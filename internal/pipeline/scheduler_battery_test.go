package pipeline_test

import (
	"sync/atomic"
	"testing"

	"slms/internal/analysis"
	"slms/internal/bench"
	"slms/internal/core"
	"slms/internal/ims"
	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/sched"
	"slms/internal/sched/exact"
	"slms/internal/source"
)

// The cross-scheduler differential battery: every corpus kernel, under
// all five standard SLMS option sets, is scheduled by BOTH registered
// modulo schedulers (the Rau-style heuristic and the SDC-based exact
// backend), asserting
//
//	(a) analysis.VerifyResult statically proves every applied SLMS
//	    transformation feeding the schedulers,
//	(b) per loop body, the exact scheduler's II never exceeds the
//	    heuristic's unless its bounded search was budget-cut below the
//	    landing II (then its own verdict says so) — a proven-optimal
//	    claim above the heuristic's II is a soundness bug in its
//	    pruning,
//	(c) observable program behavior is identical across schedulers and
//	    against the reference interpreter (the differential check; the
//	    heuristic leg's RunExperiments additionally compares every
//	    transformed run against its base run internally).
//
// The scheduler cross in (b) runs at the machine level, directly on the
// loop-body blocks of the compiled base + option-set artifacts — the
// pipeline and simulator around them are identical per backend, so
// re-simulating the whole corpus twice would only re-measure what (c)
// already established once per kernel. The exact backend's own
// end-to-end leg in (c) runs on one representative kernel per suite
// plus the known-gap loops: its search re-validates every accepted
// schedule against sched.Check internally, so the per-suite simulation
// pass guards the pipeline plumbing, not the scheduler — and keeps the
// battery inside the CI race budget. Kernel subtests run in parallel,
// so `go test -race` exercises the artifact cache, the cached transform
// store, and both scheduler backends concurrently.

// batteryOptionSets mirrors the corpus configurations the analysis
// tests verify under: paper defaults, filter off, scalar expansion,
// guard elision, and speculation.
func batteryOptionSets() []core.Options {
	mve := core.DefaultOptions()
	noFilter := core.DefaultOptions()
	noFilter.Filter = false
	arr := noFilter
	arr.Expansion = core.ExpandScalar
	noGuard := noFilter
	noGuard.NoGuard = true
	spec := noFilter
	spec.Speculate = true
	return []core.Options{mve, noFilter, arr, noGuard, spec}
}

var batteryOptionNames = []string{"default", "nofilter", "scalarexpand", "noguard", "speculate"}

// exactEndToEnd names the kernels whose exact-backend leg also runs the
// full compile+simulate pipeline: one per suite, plus the loops where
// the exact scheduler provably beats the heuristic.
var exactEndToEnd = map[string]bool{
	"kernel1":   true, // livermore
	"kernel21":  true, // livermore, real-corpus gap
	"daxpy":     true, // linpack
	"cholsky":   true, // nas
	"stone1":    true, // stone
	"heurmiss":  true, // optgap, search-found gap
	"heurmiss2": true, // optgap, search-found gap
}

func TestCrossSchedulerBattery(t *testing.T) {
	kernels := bench.OptgapCorpus()
	if testing.Short() {
		// A representative slice: two plain corpus kernels plus the two
		// search-found loops where the heuristic provably misses the
		// minimal II (the strict-win witnesses).
		var subset []bench.Kernel
		for _, k := range kernels {
			switch k.Name {
			case "kernel1", "kernel21", "heurmiss", "heurmiss2":
				subset = append(subset, k)
			}
		}
		kernels = subset
	}
	d := machine.IA64Like()
	heurCC := pipeline.StrongO3
	heurCC.Scheduler = "ims"
	exactCC := pipeline.StrongO3
	exactCC.Scheduler = "exact"
	// Quick effort keeps the exact end-to-end leg tractable across the
	// whole corpus under -race; a budget cut only weakens a verdict (to
	// budget-exhausted), never an assertion.
	exactCC.Effort = "quick"

	heurCfg, err := ims.EffortConfig("ims", "")
	if err != nil {
		t.Fatal(err)
	}
	// The per-loop scheduler cross visits every loop of every artifact,
	// so its exact search gets a small budget; the known heuristic
	// misses are rediscovered even here.
	exactCfg := ims.Config{Scheduler: (&exact.Sched{}).WithBudget(500)}

	var strictWins atomic.Int64
	t.Run("kernels", func(t *testing.T) {
		for _, k := range kernels {
			k := k
			t.Run(k.Suite+"/"+k.Name, func(t *testing.T) {
				t.Parallel()
				prog := source.MustParse(k.Source)

				// Reference semantics: the pure interpreter.
				ref := interp.NewEnv()
				if k.Setup != nil {
					k.Setup(ref)
				}
				if err := interp.Run(prog, ref); err != nil {
					t.Fatalf("interp: %v", err)
				}

				// (c) end to end: the program compiled under each backend
				// behaves exactly like the interpreter.
				legs := []struct {
					name string
					cc   pipeline.Compiler
				}{{"ims", heurCC}}
				if exactEndToEnd[k.Name] {
					legs = append(legs, struct {
						name string
						cc   pipeline.Compiler
					}{"exact", exactCC})
				}
				for _, leg := range legs {
					env := interp.NewEnv()
					if k.Setup != nil {
						k.Setup(env)
					}
					if _, _, err := pipeline.Run(prog, d, leg.cc, env); err != nil {
						t.Fatalf("[%s] pipeline: %v", leg.name, err)
					}
					delete(env.Arrays, "__spill")
					if diffs := interp.Compare(ref, env, interp.CompareOpts{FloatTol: 1e-9}); len(diffs) > 0 {
						t.Errorf("[%s] diverges from the interpreter: %v", leg.name, diffs)
					}
				}

				// All five SLMS option sets through the full measurement
				// harness once: RunExperiments is itself a differential
				// check (each transformed run compared against the shared
				// base run), and its artifacts carry the compiled loop
				// bodies the scheduler cross below works on.
				outs, errs, err := pipeline.RunExperiments(prog, d, heurCC, batteryOptionSets(), k.Setup)
				if err != nil {
					t.Fatalf("base run: %v", err)
				}
				arts := []*pipeline.Artifact{}
				for i, oerr := range errs {
					if oerr != nil {
						t.Errorf("[%s] %v", batteryOptionNames[i], oerr)
					}
					if outs[i] == nil {
						continue
					}
					// (a) every applied transformation proves statically.
					// The transform cache is shared, so these are the same
					// results either backend would compile.
					for _, r := range outs[i].Results {
						if r == nil || !r.Applied {
							continue
						}
						if v := analysis.VerifyResult(r); v.Status != analysis.StatusProved {
							t.Errorf("[%s] loop at %v: transformation not proved (%v): %v",
								batteryOptionNames[i], r.Pos, v.Status, v.Notes)
						}
					}
					if i == 0 && outs[i].BaseArt != nil {
						arts = append(arts, outs[i].BaseArt)
					}
					arts = append(arts, outs[i].SLMSArt)
				}

				// (b) the scheduler cross: every counted loop body of every
				// artifact, scheduled by both backends.
				pairs := 0
				for ai, art := range arts {
					if art == nil {
						continue
					}
					for _, b := range art.Func.Blocks {
						if !b.IsLoopBody || !b.Counted {
							continue
						}
						hr := ims.ScheduleWith(b, d, true, heurCfg)
						er := ims.ScheduleWith(b, d, true, exactCfg)
						if !hr.OK || !er.OK {
							continue
						}
						pairs++
						switch {
						case er.II > hr.II:
							if er.Opt == nil || er.Opt.Verdict != sched.VerdictBudget {
								verdict := "<none>"
								if er.Opt != nil {
									verdict = er.Opt.Verdict
								}
								t.Errorf("artifact %d block %d: exact II %d exceeds heuristic II %d with verdict %q",
									ai, b.ID, er.II, hr.II, verdict)
							}
						case er.II < hr.II:
							strictWins.Add(1)
						}
					}
				}
				if pairs == 0 {
					t.Logf("no modulo-scheduled loop pair for %s (all rejected or non-counted)", k.Name)
				}
			})
		}
	})
	if strictWins.Load() == 0 {
		t.Errorf("no loop where the exact scheduler strictly beat the heuristic's II — " +
			"the heurmiss kernels should each provide one")
	} else {
		t.Logf("exact scheduler strictly beat the heuristic on %d loop/artifact pairs", strictWins.Load())
	}
}

// TestSchedulerBackendsAgreeOnOptimality cross-checks the two backends'
// verdict plumbing on one known-gap kernel: driving the pipeline with
// the exact backend must achieve the II the heuristic-side prover
// reported as the proven minimum.
func TestSchedulerBackendsAgreeOnOptimality(t *testing.T) {
	var gap bench.Kernel
	for _, k := range bench.OptgapKernels() {
		if k.Name == "heurmiss" {
			gap = k
		}
	}
	if gap.Name == "" {
		t.Fatal("heurmiss kernel missing from the optgap corpus")
	}
	d := machine.IA64Like()
	prog := source.MustParse(gap.Source)

	heurCC := pipeline.StrongO3
	heurCC.Scheduler = "ims"
	heurCC.Effort = "standard" // attach the exact prover to the heuristic leg
	exactCC := pipeline.StrongO3
	exactCC.Scheduler = "exact"

	run := func(cc pipeline.Compiler) *pipeline.Artifact {
		env := interp.NewEnv()
		gap.Setup(env)
		_, art, err := pipeline.Run(prog, d, cc, env)
		if err != nil {
			t.Fatalf("%s: %v", cc.Scheduler, err)
		}
		return art
	}
	heurArt, exactArt := run(heurCC), run(exactCC)

	checked := 0
	for id, h := range heurArt.IMSResults {
		e := exactArt.IMSResults[id]
		if h == nil || e == nil || !h.OK || !e.OK || h.Opt == nil {
			continue
		}
		checked++
		if h.Opt.Verdict == sched.VerdictGap && e.II != h.Opt.ExactII {
			t.Errorf("block %d: prover says minimal II=%d, exact backend achieved II=%d",
				id, h.Opt.ExactII, e.II)
		}
		if e.Opt == nil || e.Opt.Verdict == "" {
			t.Errorf("block %d: exact backend returned no optimality verdict", id)
		}
	}
	if checked == 0 {
		t.Fatal("no modulo-scheduled loop with a prover verdict to cross-check")
	}
}
