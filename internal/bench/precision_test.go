package bench

import (
	"strings"
	"testing"

	"slms/internal/analysis"
	"slms/internal/core"
)

// TestPrecisionGate is the dependence-precision regression gate: over
// the full corpus (paper kernels + solver-targeted kernels), the exact
// solver must never leave MORE unknown edges than the legacy test, must
// resolve at least 30% of the legacy unknowns, and must make at least
// one loop schedulable (or strictly faster) that the legacy analysis
// could not. Static analysis only — fast enough to run unconditionally.
func TestPrecisionGate(t *testing.T) {
	rows, sum, err := PrecisionCensus(PrecisionCorpus())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", PrecisionTable(rows, sum))
	for _, r := range rows {
		if r.UnknownExact > r.UnknownLegacy {
			t.Errorf("%s: solver INCREASED unknown edges %d -> %d", r.Kernel, r.UnknownLegacy, r.UnknownExact)
		}
		if r.IILegacy > 0 && (r.IIExact == 0 || r.IIExact > r.IILegacy) {
			t.Errorf("%s: solver lost ground: II %d -> %d", r.Kernel, r.IILegacy, r.IIExact)
		}
	}
	if sum.UnknownLegacy == 0 {
		t.Fatal("census saw no legacy-unknown edges; the gate checked nothing")
	}
	resolved := float64(sum.UnknownLegacy-sum.UnknownExact) / float64(sum.UnknownLegacy)
	if resolved < 0.30 {
		t.Errorf("solver resolved %.0f%% of legacy-unknown edges, want >= 30%% (%d -> %d)",
			100*resolved, sum.UnknownLegacy, sum.UnknownExact)
	}
	if sum.NewlyPipelined == 0 {
		t.Error("no loop is newly pipelined by exact analysis")
	}
	if sum.LowerII+sum.NewlyPipelined < 1 {
		t.Error("no loop gained a strictly lower II from exact analysis")
	}
}

// TestPrecisionKernelsValidated: every solver-targeted kernel must lint
// clean with the differential harness forced on — the transformation
// enabled by the sharpened analysis is revalidated statically (the
// enumeration re-check inside VerifyResult) and dynamically (original
// and transformed agree on generated inputs).
func TestPrecisionKernelsValidated(t *testing.T) {
	for _, k := range PrecisionKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			rep, err := analysis.LintSource(k.Name, k.Source,
				analysis.LintOptions{Core: core.DefaultOptions(), Diff: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep.HasErrors() {
				t.Fatalf("lint errors:\n%s", rep.Render(false))
			}
			if rep.Summary.Refuted > 0 {
				t.Fatalf("schedule refuted:\n%s", rep.Render(false))
			}
		})
	}
}

// TestFigurePrecisionShape pins the figure contract: one row per corpus
// kernel, two series, and a resolution note.
func TestFigurePrecisionShape(t *testing.T) {
	f, err := FigurePrecision()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(PrecisionCorpus()); len(f.Rows) != want {
		t.Errorf("rows: got %d, want %d", len(f.Rows), want)
	}
	if len(f.Series) != 2 {
		t.Errorf("series: %v", f.Series)
	}
	if len(f.Notes) == 0 || !strings.Contains(f.Notes[0], "unknown edges") {
		t.Errorf("missing summary note: %v", f.Notes)
	}
	if f.Table() == "" {
		t.Error("figure renders empty")
	}
}
