package bench

import (
	"testing"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/sim"
	"slms/internal/source"
)

// BenchmarkSimRun measures the simulator hot loop on a representative
// kernel (per-iteration environment seeding is included — it is part of
// every real measurement too).
func BenchmarkSimRun(b *testing.B) {
	k := Lookup("kernel1")
	prog := source.MustParseCached(k.Source)
	d := machine.IA64Like()
	art, err := pipeline.CompileForCached(prog, d, pipeline.StrongO3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := newSeededEnv(*k)
		if _, err := sim.Run(art.Func, d, art.Plan, env, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllFigures measures a full cold harness run: caches and
// memos are dropped every iteration so each one re-measures the whole
// figure suite.
func BenchmarkAllFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetMeasurements()
		pipeline.ResetCache()
		core.ResetTransformCache()
		if _, err := AllFigures(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllFiguresWarm measures the steady-state harness with all
// caches primed — the incremental cost of regenerating every figure.
func BenchmarkAllFiguresWarm(b *testing.B) {
	if _, err := AllFigures(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllFigures(); err != nil {
			b.Fatal(err)
		}
	}
}
