package bench

import (
	"slms/internal/interp"
)

// The extended Livermore suite: kernels beyond the subset the paper's
// figures use (the figures keep the paper's 31-loop population; these
// are provided — and tested through the full pipeline — because a
// downstream user of the library will run them, and because they
// exercise paths the core 31 do not: triangular inner loops (k6),
// index indirection with unknown dependences (k13/k14), control flow
// that defeats if-conversion (k17), downward loops (k19), long division
// recurrences (k20), intrinsics (k22), and 2-D wavefronts (k23).

// KernelsExtended returns the paper's 31 loops plus the extended
// Livermore kernels.
func KernelsExtended() []Kernel {
	return append(Kernels(), livermoreExtended()...)
}

func livermoreExtended() []Kernel {
	return []Kernel{
		{
			Name: "kernel6", Suite: "livermore-ext", FloatHeavy: true,
			// General linear recurrence equations: triangular inner loop
			// whose bound is the outer induction variable.
			Source: `
				int n = 40;
				float w[60]; float b[60][60];
				for (i = 1; i < n; i++) {
					w[i] = 0.0100;
					for (k = 0; k < i; k++) {
						w[i] = w[i] + b[k][i] * w[i-k-1];
					}
				}
			`,
			Setup: seedArrays(map[string][]int{"w": {60}, "b": {60, 60}}, 106),
		},
		{
			Name: "kernel13", Suite: "livermore-ext", FloatHeavy: false,
			// 2-D particle in cell (simplified): indirect addressing via an
			// int index array — the dependence analysis must go
			// conservative and SLMS must refuse without speculation.
			Source: `
				int n = 60;
				float y[130]; float z[130]; float h[130];
				int ir[70];
				for (k = 0; k < n; k++) {
					i1 = ir[k];
					j1 = ir[k+1];
					y[k] = y[k] + z[i1];
					h[j1] = h[j1] + 1.0;
				}
			`,
			Setup: func(env *interp.Env) {
				seedArrays(map[string][]int{"y": {130}, "z": {130}, "h": {130}}, 113)(env)
				idx := make([]int64, 70)
				for i := range idx {
					idx[i] = int64((i * 7) % 64)
				}
				env.SetIntArray("ir", idx)
			},
		},
		{
			Name: "kernel14", Suite: "livermore-ext", FloatHeavy: false,
			// 1-D particle in cell (gather phase).
			Source: `
				int n = 60;
				float vx[150]; float xx[150]; float grd[150];
				int ix[70];
				for (k = 0; k < n; k++) {
					ix1 = ix[k];
					vx[k] = vx[k] + grd[ix1];
					xx[k] = xx[k] + vx[k] * 0.5;
				}
			`,
			Setup: func(env *interp.Env) {
				seedArrays(map[string][]int{"vx": {150}, "xx": {150}, "grd": {150}}, 114)(env)
				idx := make([]int64, 70)
				for i := range idx {
					idx[i] = int64((i*11 + 3) % 128)
				}
				env.SetIntArray("ix", idx)
			},
		},
		{
			Name: "kernel17", Suite: "livermore-ext", FloatHeavy: true,
			// Implicit conditional computation: a branchy body (with an
			// else branch updating different arrays) that if-conversion
			// must predicate.
			Source: `
				int n = 100;
				float vxne[120]; float vlr[120]; float vsp[120]; float vstp[120];
				for (k = 1; k < n; k++) {
					if (vlr[k] > 0.5) {
						vxne[k] = vxne[k-1] + vsp[k];
					} else {
						vxne[k] = vxne[k-1] - vstp[k];
					}
					vlr[k] = vlr[k] * 0.9;
				}
			`,
			Setup: seedArrays(map[string][]int{
				"vxne": {120}, "vlr": {120}, "vsp": {120}, "vstp": {120}}, 117),
		},
		{
			Name: "kernel19", Suite: "livermore-ext", FloatHeavy: true,
			// General linear recurrence, the downward half: exercises
			// downward-loop mirroring before SLMS.
			Source: `
				int n = 100;
				float b5[120]; float sa[120]; float sb[120];
				float stb5 = 0.1;
				for (i = n; i > 0; i--) {
					b5[i] = sa[i] + stb5 * sb[i];
					stb5 = b5[i] - stb5;
				}
			`,
			Setup: seedArrays(map[string][]int{"b5": {120}, "sa": {120}, "sb": {120}}, 119),
		},
		{
			Name: "kernel20", Suite: "livermore-ext", FloatHeavy: true,
			// Discrete ordinates transport: a division-heavy first-order
			// recurrence.
			Source: `
				int n = 80;
				float xx2[100]; float vx2[100]; float g[100]; float u[100]; float v[100]; float w2[100];
				float dk = 0.2;
				for (k = 1; k < n; k++) {
					di = u[k] - g[k] * xx2[k-1];
					dn = 0.2;
					if (di > 0.01) dn = v[k] / di;
					xx2[k] = (w2[k] + v[k] * dn) / (1.0 + g[k] * dn * dk);
					vx2[k] = xx2[k] - xx2[k-1];
				}
			`,
			Setup: seedArrays(map[string][]int{
				"xx2": {100}, "vx2": {100}, "g": {100}, "u": {100}, "v": {100}, "w2": {100}}, 120),
		},
		{
			Name: "kernel22", Suite: "livermore-ext", FloatHeavy: true,
			// Planckian distribution: the exp intrinsic in the body.
			Source: `
				int n = 80;
				float y2[100]; float u2[100]; float v2[100]; float x2[100];
				float expmax = 20.0;
				for (k = 0; k < n; k++) {
					y2[k] = u2[k] / v2[k];
					w = x2[k] / y2[k];
					if (w < expmax) {
						x2[k] = exp(w) - 1.0;
					}
				}
			`,
			Setup: func(env *interp.Env) {
				seedArrays(map[string][]int{"y2": {100}, "u2": {100}, "v2": {100}, "x2": {100}}, 122)(env)
			},
		},
		{
			Name: "kernel23", Suite: "livermore-ext", FloatHeavy: true,
			// 2-D implicit hydrodynamics: carried dependences in both grid
			// dimensions (only the inner one matters to SLMS).
			Source: `
				int n = 28;
				float za2[32][32]; float zb2[32][32]; float zr2[32][32]; float zu2[32][32];
				float zv2[32][32]; float zz2[32][32];
				float s2 = 0.2;
				int j = 2;
				for (k = 1; k < n; k++) {
					qa = za2[k][j+1]*zr2[k][j] + za2[k][j-1]*zb2[k][j] +
						za2[k+1][j]*zu2[k][j] + za2[k-1][j]*zv2[k][j] + zz2[k][j];
					za2[k][j] = za2[k][j] + s2*(qa - za2[k][j]);
				}
			`,
			Setup: seedArrays(map[string][]int{
				"za2": {32, 32}, "zb2": {32, 32}, "zr2": {32, 32},
				"zu2": {32, 32}, "zv2": {32, 32}, "zz2": {32, 32}}, 123),
		},
	}
}
