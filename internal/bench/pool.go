package bench

import (
	"fmt"
	"runtime"
	"sync"

	"slms/internal/machine"
	"slms/internal/pipeline"
)

// The harness runs every measurement through one shared bounded worker
// pool: rows of a figure, figures of the suite, census rows and
// ablation cells all draw from the same token bucket, so total
// concurrency stays bounded by the pool size no matter how the work is
// nested. Orchestration code (a figure waiting for its rows) never
// holds a token while waiting, so nesting cannot deadlock.

var (
	poolMu   sync.Mutex
	poolSize = runtime.GOMAXPROCS(0)
	poolSem  = make(chan struct{}, runtime.GOMAXPROCS(0))
)

// SetWorkers resizes the shared worker pool (minimum 1; the default is
// runtime.GOMAXPROCS). In-flight work keeps its token from the old
// pool; new work draws from the new one.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	poolMu.Lock()
	poolSize = n
	poolSem = make(chan struct{}, n)
	poolMu.Unlock()
}

// Workers returns the current worker-pool size.
func Workers() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolSize
}

func currentSem() chan struct{} {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolSem
}

// parallelMap runs work over every item through the shared worker pool
// and returns the results in input order. All items are attempted; the
// first error in input order wins, making failures deterministic under
// concurrency. A panicking worker does not crash the harness: the panic
// is captured and reported as that item's error, named after the item
// (for kernels, the kernel name), so one broken kernel fails its figure
// while every other measurement completes.
func parallelMap[T, R any](items []T, work func(T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	sem := currentSem()
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it T) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("bench: worker panic on %s: %v", workItemName(it), r)
				}
			}()
			out[i], errs[i] = work(it)
		}(i, it)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// workItemName renders a work item for panic reports: kernels by name,
// everything else through %v.
func workItemName(it any) string {
	switch v := it.(type) {
	case Kernel:
		return "kernel " + v.Name
	case *Kernel:
		return "kernel " + v.Name
	default:
		return fmt.Sprintf("%v", v)
	}
}

// measureKey identifies one memoized measurement: kernel, machine and
// compiler are embedded by value so distinct configurations can never
// collide.
type measureKey struct {
	kernel string
	src    string
	mach   machine.Desc
	cc     pipeline.Compiler
}

// measureEntry is a once-filled memo slot; concurrent requests for the
// same measurement run it exactly once.
type measureEntry struct {
	once sync.Once
	out  *pipeline.Outcome
	err  error
}

var measureMemo sync.Map // measureKey -> *measureEntry

// ResetMeasurements drops every memoized measurement and the per-kernel
// aggregates built from them (used by benchmarks and the legs harness so
// each run measures real work and reports only its own trajectory).
func ResetMeasurements() {
	measureMemo.Range(func(k, _ any) bool {
		measureMemo.Delete(k)
		return true
	})
	kernelMeasurements.Lock()
	kernelMeasurements.m = map[string]*kernelAgg{}
	kernelMeasurements.Unlock()
}

// measureCached memoizes measure: the same (kernel, machine, compiler)
// triple is measured once per process and shared. Measurements are
// deterministic (seeding, compilation and simulation all are), so the
// memo is observationally identical to re-measuring.
func measureCached(k Kernel, d *machine.Desc, cc pipeline.Compiler) (*pipeline.Outcome, error) {
	key := measureKey{kernel: k.Name, src: k.Source, mach: *d, cc: cc}
	v, _ := measureMemo.LoadOrStore(key, &measureEntry{})
	e := v.(*measureEntry)
	e.once.Do(func() { e.out, e.err = measure(k, d, cc) })
	return e.out, e.err
}
