package bench

import (
	"runtime"
	"testing"
)

// TestCacheBreakdownSumsCorrectly pins the BENCH schema invariant: the
// per-cache split (parse/transform/compile) is present, ordered, and
// sums exactly to the run's CacheHits/CacheMisses totals.
func TestCacheBreakdownSumsCorrectly(t *testing.T) {
	ResetHarnessState()
	_, stats, err := AllFiguresTimed()
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"parse", "transform", "compile"}
	if len(stats.Caches) != len(wantOrder) {
		t.Fatalf("Caches has %d entries, want %d", len(stats.Caches), len(wantOrder))
	}
	var hits, misses int64
	for i, cs := range stats.Caches {
		if cs.Cache != wantOrder[i] {
			t.Errorf("Caches[%d] = %q, want %q", i, cs.Cache, wantOrder[i])
		}
		if cs.Hits < 0 || cs.Misses < 0 {
			t.Errorf("cache %s has negative counters: %d/%d", cs.Cache, cs.Hits, cs.Misses)
		}
		if total := cs.Hits + cs.Misses; total > 0 {
			if want := float64(cs.Hits) / float64(total); cs.HitRate != want {
				t.Errorf("cache %s hit rate %v, want %v", cs.Cache, cs.HitRate, want)
			}
		} else if cs.HitRate != 0 {
			t.Errorf("idle cache %s has hit rate %v", cs.Cache, cs.HitRate)
		}
		hits += cs.Hits
		misses += cs.Misses
	}
	if hits != stats.CacheHits || misses != stats.CacheMisses {
		t.Errorf("per-cache counters sum to %d/%d, totals say %d/%d",
			hits, misses, stats.CacheHits, stats.CacheMisses)
	}
	// A from-cold full run must have done real work in every layer.
	for _, cs := range stats.Caches {
		if cs.Hits+cs.Misses == 0 {
			t.Errorf("cache %s saw no traffic over a full figure run", cs.Cache)
		}
	}
}

// TestAllFiguresLegs runs the two-leg harness end to end: both legs
// must succeed, render byte-identical figures (AllFiguresLegs enforces
// that internally), and report coherent trajectories. The ≥2x scaling
// demand lives in the env-gated throughput gate, not here — this test
// must pass on a single-core runner too.
func TestAllFiguresLegs(t *testing.T) {
	figs, legs, err := AllFiguresLegs()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 {
		t.Fatal("legs run produced no figures")
	}
	if legs.Schema != LegsSchema {
		t.Errorf("schema = %q, want %q", legs.Schema, LegsSchema)
	}
	if legs.Serial == nil || legs.Parallel == nil {
		t.Fatal("legs record is missing a side")
	}
	if legs.Serial.Workers != 1 {
		t.Errorf("serial leg ran with %d workers, want 1", legs.Serial.Workers)
	}
	if want := runtime.GOMAXPROCS(0); legs.Parallel.Workers != want {
		t.Errorf("parallel leg ran with %d workers, want %d", legs.Parallel.Workers, want)
	}
	// Cycle totals are deterministic; the legs must agree exactly.
	if legs.Serial.SimulatedCycles != legs.Parallel.SimulatedCycles {
		t.Errorf("legs simulated %d vs %d cycles; determinism broken",
			legs.Serial.SimulatedCycles, legs.Parallel.SimulatedCycles)
	}
	if legs.Serial.CyclesPerSecond <= 0 || legs.Parallel.CyclesPerSecond <= 0 {
		t.Errorf("non-positive throughput: serial %v, parallel %v",
			legs.Serial.CyclesPerSecond, legs.Parallel.CyclesPerSecond)
	}
	if legs.Scaling <= 0 {
		t.Errorf("scaling = %v, want > 0", legs.Scaling)
	}
}
