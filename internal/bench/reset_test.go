package bench

import (
	"testing"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/source"
)

// The cache-reset contract: the three caching layers (parse, transform,
// compile) clear through one obs.ResetCaches call, and each layer's
// reset zeroes its stat atomics AND its mirrored registry counters
// together. Before the registry existed, a caller that reset the caches
// but not the counters (or vice versa) left the two views disagreeing —
// a RunStats cache breakdown that no longer summed to its totals.

const resetKernel = `float A[32]; float B[32];
float t = 0.0; float s = 0.0;
for (i = 0; i < 32; i++) {
	t = A[i] * B[i];
	s = s + t;
}
`

// primeCaches drives one parse, transform and compile through the
// cached paths twice, guaranteeing every layer records at least one
// miss and one hit.
func primeCaches(t *testing.T) {
	t.Helper()
	d := machine.IA64Like()
	for i := 0; i < 2; i++ {
		prog, err := source.ParseCached(resetKernel)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, _, err := core.TransformProgramCached(prog, core.Options{}); err != nil {
			t.Fatalf("transform: %v", err)
		}
		if _, err := pipeline.CompileForCached(prog, d, pipeline.WeakO3); err != nil {
			t.Fatalf("compile: %v", err)
		}
	}
}

// registryCacheCounts reads the mirrored registry counters for all
// three layers.
func registryCacheCounts() cacheCounts {
	var c cacheCounts
	c.parseHits = obs.CounterName("source.parse.cache.hits").Value()
	c.parseMisses = obs.CounterName("source.parse.cache.misses").Value()
	c.transformHits = obs.CounterName("core.transform.cache.hits").Value()
	c.transformMisses = obs.CounterName("core.transform.cache.misses").Value()
	c.compileHits = obs.CounterName("pipeline.compile.cache.hits").Value()
	c.compileMisses = obs.CounterName("pipeline.compile.cache.misses").Value()
	return c
}

func TestResetCachesClearsAllStatGroups(t *testing.T) {
	ResetHarnessState()
	primeCaches(t)

	stats := snapshotCaches()
	if stats.parseMisses == 0 || stats.transformMisses == 0 || stats.compileMisses == 0 {
		t.Fatalf("priming did not touch every cache: %+v", stats)
	}
	if stats.parseHits == 0 || stats.transformHits == 0 || stats.compileHits == 0 {
		t.Fatalf("priming did not hit every cache: %+v", stats)
	}
	if reg := registryCacheCounts(); reg != stats {
		t.Fatalf("registry counters %+v diverge from stat atomics %+v before reset", reg, stats)
	}

	obs.ResetCaches()
	if got := snapshotCaches(); got != (cacheCounts{}) {
		t.Errorf("stat atomics not all zero after ResetCaches: %+v", got)
	}
	if got := registryCacheCounts(); got != (cacheCounts{}) {
		t.Errorf("registry counters not all zero after ResetCaches: %+v", got)
	}
}

// TestCacheSumsHoldAfterReset proves the RunStats.Caches invariant
// survives a reset: a delta taken over work done after ResetCaches sums
// exactly to the raw per-layer stats — no stale counts from before the
// reset leak into the breakdown, in either the atomics or the registry.
func TestCacheSumsHoldAfterReset(t *testing.T) {
	primeCaches(t) // dirty every layer first
	ResetHarnessState()

	before := snapshotCaches()
	if before != (cacheCounts{}) {
		t.Fatalf("snapshot after reset not zero: %+v", before)
	}
	primeCaches(t)
	breakdown := before.delta(snapshotCaches())

	var hits, misses int64
	for _, cs := range breakdown {
		if cs.Hits < 0 || cs.Misses < 0 {
			t.Errorf("cache %s has a negative delta: %+v (stale pre-reset counts)", cs.Cache, cs)
		}
		hits += cs.Hits
		misses += cs.Misses
	}
	after := snapshotCaches()
	wantHits := after.parseHits + after.transformHits + after.compileHits
	wantMisses := after.parseMisses + after.transformMisses + after.compileMisses
	if hits != wantHits || misses != wantMisses {
		t.Errorf("breakdown sums %d/%d != raw stats %d/%d", hits, misses, wantHits, wantMisses)
	}
	if reg := registryCacheCounts(); reg != after {
		t.Errorf("registry counters %+v diverge from stat atomics %+v after reset+work", reg, after)
	}
}
