package bench

import (
	"fmt"
	"runtime"

	"slms/internal/core"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/source"
)

// The two-leg trajectory: the harness runs the full figure suite twice,
// once fully serial (one pool worker, one pipeline worker) and once
// parallel (GOMAXPROCS everywhere), from cold caches each time. The
// figures must come out byte-identical — parallelism is a scheduling
// choice, never a semantic one — and the pair of RunStats records the
// throughput of each configuration so the regression gate can watch
// cycles/second scaling, not just cycle counts.

// LegsSchema identifies a LegsStats JSON document.
const LegsSchema = "slms-bench-legs/v1"

// CacheStat is one cache's hit/miss split over a run.
type CacheStat struct {
	Cache   string  `json:"cache"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// cacheCounts snapshots the cumulative counters of every caching layer
// under the harness: source parse, core transform, pipeline artifact
// ("compile").
type cacheCounts struct {
	parseHits, parseMisses         int64
	transformHits, transformMisses int64
	compileHits, compileMisses     int64
}

func snapshotCaches() cacheCounts {
	var c cacheCounts
	c.parseHits, c.parseMisses = source.ParseCacheStats()
	c.transformHits, c.transformMisses = core.TransformCacheStats()
	c.compileHits, c.compileMisses = pipeline.CacheStats()
	return c
}

// delta renders the per-cache growth between two snapshots in a fixed
// order (parse, transform, compile).
func (before cacheCounts) delta(after cacheCounts) []CacheStat {
	mk := func(name string, hits, misses int64) CacheStat {
		cs := CacheStat{Cache: name, Hits: hits, Misses: misses}
		if total := hits + misses; total > 0 {
			cs.HitRate = float64(hits) / float64(total)
		}
		return cs
	}
	return []CacheStat{
		mk("parse", after.parseHits-before.parseHits, after.parseMisses-before.parseMisses),
		mk("transform", after.transformHits-before.transformHits, after.transformMisses-before.transformMisses),
		mk("compile", after.compileHits-before.compileHits, after.compileMisses-before.compileMisses),
	}
}

// LegsStats is the serial + parallel harness trajectory of one
// AllFiguresLegs run. cmd/slmsbench -legs serializes it as
// BENCH_*.json; compare.LoadAny reads either this or a legacy single
// RunStats.
type LegsStats struct {
	Schema   string    `json:"schema"` // LegsSchema
	Serial   *RunStats `json:"serial"`
	Parallel *RunStats `json:"parallel"`
	// Scaling is parallel cycles/second over serial cycles/second —
	// the throughput multiplier bought by parallelism on this host.
	Scaling float64 `json:"scaling"`
}

// ResetHarnessState drops every cross-run memo and cache (measurement
// memo, kernel aggregates, artifact/transform/parse caches) so the next
// run measures real work from cold. The three pipeline caches clear
// through the obs cache-reset registry — one atomic operation over all
// stat groups, so a snapshot taken after the reset sees every layer at
// zero, never a half-cleared mix.
func ResetHarnessState() {
	ResetMeasurements()
	obs.ResetCaches()
}

// AllFiguresLegs runs the full figure suite twice — serial then
// parallel — from cold caches, checks the two legs render byte-identical
// figure tables, and returns the parallel leg's figures with both legs'
// trajectories. Worker-pool and pipeline parallelism settings are
// restored on return.
func AllFiguresLegs() ([]*Figure, *LegsStats, error) {
	origWorkers := Workers()
	origPar := pipeline.Parallelism()
	defer func() {
		SetWorkers(origWorkers)
		pipeline.SetParallelism(origPar)
	}()

	SetWorkers(1)
	pipeline.SetParallelism(1)
	ResetHarnessState()
	serialFigs, serialStats, err := AllFiguresTimed()
	if err != nil {
		return nil, nil, fmt.Errorf("serial leg: %w", err)
	}

	n := runtime.GOMAXPROCS(0)
	SetWorkers(n)
	pipeline.SetParallelism(n)
	ResetHarnessState()
	parFigs, parStats, err := AllFiguresTimed()
	if err != nil {
		return nil, nil, fmt.Errorf("parallel leg: %w", err)
	}

	if err := equalFigures(serialFigs, parFigs); err != nil {
		return nil, nil, err
	}
	legs := &LegsStats{Schema: LegsSchema, Serial: serialStats, Parallel: parStats}
	if serialStats.CyclesPerSecond > 0 {
		legs.Scaling = parStats.CyclesPerSecond / serialStats.CyclesPerSecond
	}
	return parFigs, legs, nil
}

// equalFigures demands two figure sets render identically — the
// determinism contract between the serial and parallel legs.
func equalFigures(a, b []*Figure) error {
	if len(a) != len(b) {
		return fmt.Errorf("bench: legs produced %d vs %d figures", len(a), len(b))
	}
	for i := range a {
		if a[i].Table() != b[i].Table() {
			return fmt.Errorf("bench: figure %s renders differently between the serial and parallel legs", a[i].ID)
		}
	}
	return nil
}
