package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"slms/internal/interp"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/prof"
	"slms/internal/sim"
	"slms/internal/source"
)

// Row is one bar of a reproduced figure.
type Row struct {
	Kernel  string
	Value   float64 // the figure's metric (speedup or power ratio)
	Value2  float64 // second series where the figure has one (e.g. no-O3)
	Applied bool
	Note    string
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	ID     string
	Title  string
	Metric string
	Series []string // column titles for Value/Value2
	Rows   []Row
	Notes  []string
}

// Table renders the figure as an aligned text table.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "metric: %s\n", f.Metric)
	header := fmt.Sprintf("%-12s", "kernel")
	for _, s := range f.Series {
		header += fmt.Sprintf(" %12s", s)
	}
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, strings.Repeat("-", len(header)))
	for _, r := range f.Rows {
		line := fmt.Sprintf("%-12s %12.3f", r.Kernel, r.Value)
		if len(f.Series) > 1 {
			line += fmt.Sprintf(" %12.3f", r.Value2)
		}
		if !r.Applied {
			line += "   (slms skipped: " + r.Note + ")"
		} else if r.Note != "" {
			line += "   " + r.Note
		}
		fmt.Fprintln(&b, line)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// geoMeanApplied summarizes the applied rows.
func (f *Figure) geoMeanApplied() (float64, int) {
	prod, n := 1.0, 0
	for _, r := range f.Rows {
		if r.Applied && r.Value > 0 {
			prod *= r.Value
			n++
		}
	}
	if n == 0 {
		return 1, 0
	}
	return math.Pow(prod, 1/float64(n)), n
}

// measure runs kernel k under the machine/compiler pair and returns the
// outcome. The paper's experiments run SLMS "with and without MVE" and
// keep the best; we do the same with MVE vs scalar expansion. Each
// measurement is one span tree (root "measure:<kernel>") when tracing
// is on, and its per-phase wall times feed the per-kernel breakdown of
// RunStats regardless.
func measure(k Kernel, d *machine.Desc, cc pipeline.Compiler) (*pipeline.Outcome, error) {
	sp := obs.Root("measure:"+k.Name).
		Attr("kernel", k.Name).Attr("machine", d.Name).Attr("compiler", cc.Name)
	defer sp.End()
	var prog *source.Program
	var perr error
	parseD := obs.Time(sp, "parse", func(*obs.Span) {
		prog, perr = source.ParseCached(k.Source)
	})
	if perr != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, perr)
	}
	altOpts := core.DefaultOptions()
	altOpts.Expansion = core.ExpandScalar
	// One shared base run for both variants (the untransformed leg does
	// not depend on the SLMS options).
	outs, errs, err := pipeline.RunExperimentsSpan(sp, prog, d, cc,
		[]core.Options{core.DefaultOptions(), altOpts}, k.Setup)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	if errs[0] != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, errs[0])
	}
	best := outs[0]
	if alt := outs[1]; errs[1] == nil && alt.Applied && alt.Speedup > best.Speedup {
		best = alt
	}
	recordKernelMeasurement(k.Name, parseD, outs, best)
	return best, nil
}

// kernelAgg is the per-kernel accumulation over every measurement the
// process performed: per-phase wall seconds, the deterministic cycle
// totals of the best legs (the regression gate diffs these), and — when
// profiling is on — cause totals plus the legs' full profiles.
type kernelAgg struct {
	phases     map[string]float64
	baseCycles int64
	slmsCycles int64
	baseCauses prof.Counts
	slmsCauses prof.Counts
	profiled   bool
	profiles   []*prof.Profile
}

// kernelMeasurements accumulates per-kernel data over every measurement
// performed by the process. measure runs once per memoized (kernel,
// machine, compiler) triple, so the aggregate is the real work done to
// produce the figures, with cache hits near zero.
var kernelMeasurements = struct {
	sync.Mutex
	m map[string]*kernelAgg
}{m: map[string]*kernelAgg{}}

func recordKernelMeasurement(kernel string, parseD time.Duration, outs []*pipeline.Outcome, best *pipeline.Outcome) {
	kernelMeasurements.Lock()
	defer kernelMeasurements.Unlock()
	agg := kernelMeasurements.m[kernel]
	if agg == nil {
		agg = &kernelAgg{phases: map[string]float64{}}
		kernelMeasurements.m[kernel] = agg
	}
	agg.phases["parse"] += parseD.Seconds()
	for i, o := range outs {
		if o == nil {
			continue
		}
		for ph, s := range o.Phases {
			// The base leg is shared across option sets; count it once.
			if i > 0 && strings.HasSuffix(ph, ".base") {
				continue
			}
			agg.phases[ph] += s
		}
	}
	if best == nil || best.Base == nil {
		return
	}
	agg.baseCycles += best.Base.Cycles
	slms := best.SLMS
	if slms == nil {
		slms = best.Base // transform failed: report the base leg
	}
	agg.slmsCycles += slms.Cycles
	if p := best.Base.Profile; p != nil {
		agg.profiled = true
		if p.Label == "" {
			p.Label = kernel
		}
		t := p.Totals()
		agg.baseCauses.Add(&t)
		agg.profiles = append(agg.profiles, p)
	}
	if p := slms.Profile; p != nil {
		agg.profiled = true
		if p.Label == "" {
			p.Label = kernel
		}
		t := p.Totals()
		agg.slmsCauses.Add(&t)
		if p != best.Base.Profile { // avoid double-listing a shared leg
			agg.profiles = append(agg.profiles, p)
		}
	}
}

// KernelStat is the per-kernel breakdown of a harness run: phase wall
// times, deterministic base/SLMS cycle totals (summed over every
// machine/compiler configuration measured — the regression gate's
// input) and, when the run profiled, per-cause cycle totals.
type KernelStat struct {
	Kernel  string             `json:"kernel"`
	Seconds float64            `json:"seconds"` // sum over phases
	Phases  map[string]float64 `json:"phases"`  // phase -> wall seconds
	// Cycle totals of the best (reported) legs, summed across
	// configurations. Deterministic: identical on every machine.
	BaseCycles int64 `json:"base_cycles,omitempty"`
	SLMSCycles int64 `json:"slms_cycles,omitempty"`
	// Cause totals across configurations, present when profiling was on
	// (slmsbench -profile).
	BaseCauses *prof.Counts `json:"base_causes,omitempty"`
	SLMSCauses *prof.Counts `json:"slms_causes,omitempty"`
}

func kernelStats() []KernelStat {
	kernelMeasurements.Lock()
	defer kernelMeasurements.Unlock()
	out := make([]KernelStat, 0, len(kernelMeasurements.m))
	for k, agg := range kernelMeasurements.m {
		ks := KernelStat{
			Kernel: k, Phases: make(map[string]float64, len(agg.phases)),
			BaseCycles: agg.baseCycles, SLMSCycles: agg.slmsCycles,
		}
		for ph, s := range agg.phases {
			ks.Phases[ph] = s
			ks.Seconds += s
		}
		if agg.profiled {
			bc, sc := agg.baseCauses, agg.slmsCauses
			ks.BaseCauses, ks.SLMSCauses = &bc, &sc
		}
		out = append(out, ks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// SuiteProfiles returns every per-leg profile collected by profiled
// measurements, sorted by (kernel, machine, compiler, leg) so pprof
// output is deterministic. Empty unless prof.SetEnabled(true) was on
// while the figures ran.
func SuiteProfiles() []*prof.Profile {
	kernelMeasurements.Lock()
	defer kernelMeasurements.Unlock()
	var out []*prof.Profile
	for _, agg := range kernelMeasurements.m {
		out = append(out, agg.profiles...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Compiler != b.Compiler {
			return a.Compiler < b.Compiler
		}
		return a.Leg < b.Leg
	})
	return out
}

func reasonOf(out *pipeline.Outcome) string {
	for _, r := range out.Results {
		if !r.Applied && r.Reason != "" {
			return r.Reason
		}
	}
	return "not applied"
}

// speedupFigure builds a two-series speedup figure (with and without
// -O3) for a set of kernels on one machine. Kernels are measured
// concurrently through the shared worker pool (every measurement is
// self-contained and deterministic); rows come back in kernel order.
func speedupFigure(id, title string, kernels []Kernel, d *machine.Desc,
	o3, noO3 pipeline.Compiler) (*Figure, error) {
	f := &Figure{
		ID: id, Title: title,
		Metric: "speedup of SLMSed loop vs original (cycles), >1 is better",
		Series: []string{"-O3", "no -O3"},
	}
	rows, err := parallelRows(kernels, func(k Kernel) (Row, error) {
		out, err := measureCached(k, d, o3)
		if err != nil {
			return Row{}, err
		}
		out2, err := measureCached(k, d, noO3)
		if err != nil {
			return Row{}, err
		}
		row := Row{Kernel: k.Name, Value: out.Speedup, Value2: out2.Speedup, Applied: out.Applied}
		if !out.Applied {
			row.Value, row.Value2 = 1, 1
			row.Note = reasonOf(out)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	gm, n := f.geoMeanApplied()
	f.Notes = append(f.Notes, fmt.Sprintf("geometric-mean -O3 speedup over %d applied loops: %.3f", n, gm))
	return f, nil
}

// parallelRows measures every kernel concurrently through the shared
// bounded worker pool and returns the rows in input order. The first
// error (in input order) wins.
func parallelRows(kernels []Kernel, work func(Kernel) (Row, error)) ([]Row, error) {
	return parallelMap(kernels, work)
}

// Figure14 reproduces "Livermore & Linpack over GCC" (IA64, weak
// compiler, with and without -O3).
func Figure14() (*Figure, error) {
	ks := append(Suite("livermore"), Suite("linpack")...)
	return speedupFigure("Figure 14", "Livermore & Linpack over GCC (ia64-like VLIW, weak compiler)",
		ks, machine.IA64Like(), pipeline.WeakO3, pipeline.WeakNoO3)
}

// Figure15 reproduces "Stone and NAS over GCC".
func Figure15() (*Figure, error) {
	ks := append(Suite("stone"), Suite("nas")...)
	return speedupFigure("Figure 15", "Stone & NAS over GCC (ia64-like VLIW, weak compiler)",
		ks, machine.IA64Like(), pipeline.WeakO3, pipeline.WeakNoO3)
}

// Figure16 reproduces the retargetability claim behind the paper's
// "SLMS can close the gap between using and not using -O3": SLMS applied
// in front of a compiler that lacks machine-level modulo scheduling
// recovers much of the advantage a strong compiler gets from it. For
// each loop we report which fraction of the weak→strong cycle gap the
// source-level transformation recovers:
//
//	closure = (cyc(weak) - cyc(weak+SLMS)) / (cyc(weak) - cyc(strong))
//
// (The paper measures the analogous -O3 vs no-O3 gap on ICC; an
// instruction-accurate -O0 model stalls all code equally, so this
// reproduction uses the missing-backend-optimization gap instead — see
// EXPERIMENTS.md.)
func Figure16() (*Figure, error) {
	d := machine.IA64Like()
	f := &Figure{
		ID:     "Figure 16",
		Title:  "SLMS in front of a weak compiler closes the gap to a strong (machine-MS) compiler (ia64)",
		Metric: "gap closure = (cyc(weak) - cyc(weak+SLMS)) / (cyc(weak) - cyc(strong)); 1.0 = full gap",
		Series: []string{"gap closure"},
	}
	ks := append(Suite("livermore"), Suite("linpack")...)
	rows, err := parallelRows(ks, func(k Kernel) (Row, error) {
		outWeak, err := measureCached(k, d, pipeline.WeakO3)
		if err != nil {
			return Row{}, err
		}
		// The strong compiler's cycle count is the base leg of the
		// (kernel, ia64, StrongO3) measurement Figure 18 also needs, so
		// share it through the measurement memo instead of re-simulating.
		outStrong, err := measureCached(k, d, pipeline.StrongO3)
		if err != nil {
			return Row{}, err
		}
		mStrong := outStrong.Base
		gap := float64(outWeak.Base.Cycles - mStrong.Cycles)
		row := Row{Kernel: k.Name, Applied: outWeak.Applied}
		if !outWeak.Applied {
			row.Note = reasonOf(outWeak)
		}
		// Only meaningful when the strong compiler actually wins
		// something on this loop (>2% of the weak cycles).
		if gap > 0.02*float64(outWeak.Base.Cycles) {
			row.Value = float64(outWeak.Base.Cycles-outWeak.SLMS.Cycles) / gap
		} else {
			row.Note = "machine-level MS gains nothing on this loop"
			row.Applied = false
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	return f, nil
}

func newSeededEnv(k Kernel) *interp.Env {
	env := interp.NewEnv()
	if k.Setup != nil {
		k.Setup(env)
	}
	return env
}

// Figure17 reproduces "SLMS can improve performance over superscalar
// processor" (Pentium-like, weak compiler).
func Figure17() (*Figure, error) {
	ks := append(Suite("livermore"), Suite("linpack")...)
	f, err := speedupFigure("Figure 17", "Livermore & Linpack on a Pentium-like superscalar (GCC-like compiler)",
		ks, machine.PentiumLike(), pipeline.WeakO3, pipeline.WeakNoO3)
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		"kernel10 has many loop variants; MVE register pressure causes spills on the 8-register machine (paper: 35 registers → spilling)")
	return f, nil
}

// Figure18 reproduces "Livermore & Linpack over ICC" (strong compiler
// with machine-level modulo scheduling).
func Figure18() (*Figure, error) {
	ks := append(Suite("livermore"), Suite("linpack")...)
	return speedupFigure("Figure 18", "Livermore & Linpack over ICC-like strong compiler (ia64, machine-level MS on)",
		ks, machine.IA64Like(), pipeline.StrongO3, pipeline.StrongNoO3)
}

// Figure19 reproduces "Stone and NAS over ICC".
func Figure19() (*Figure, error) {
	ks := append(Suite("stone"), Suite("nas")...)
	return speedupFigure("Figure 19", "Stone & NAS over ICC-like strong compiler (ia64)",
		ks, machine.IA64Like(), pipeline.StrongO3, pipeline.StrongNoO3)
}

// Figure20 reproduces "Livermore & Linpack + NAS over XLC" (Power4-like).
func Figure20() (*Figure, error) {
	ks := append(append(Suite("livermore"), Suite("linpack")...), Suite("nas")...)
	return speedupFigure("Figure 20", "Livermore, Linpack & NAS over XLC-like strong compiler (power4-like)",
		ks, machine.Power4Like(), pipeline.StrongO3, pipeline.StrongNoO3)
}

// Figure21 reproduces "Power dissipation for the ARM": energy ratio of
// the original vs the SLMSed loop on the ARM7-like core (Panalyzer
// substitute), >1 means SLMS saves energy.
func Figure21() (*Figure, error) {
	return armFigure("Figure 21", "Power dissipation improvement on ARM7-like core",
		"base energy / slms energy (>1 = SLMS reduces power)", true)
}

// Figure22 reproduces "Total number of cycles for the ARM".
func Figure22() (*Figure, error) {
	return armFigure("Figure 22", "Cycle-count improvement on ARM7-like core",
		"speedup (base cycles / slms cycles)", false)
}

func armFigure(id, title, metric string, energy bool) (*Figure, error) {
	d := machine.ARM7Like()
	f := &Figure{ID: id, Title: title, Metric: metric, Series: []string{"ratio"}}
	ks := append(Suite("livermore"), Suite("linpack")...)
	rows, err := parallelRows(ks, func(k Kernel) (Row, error) {
		out, err := measureCached(k, d, pipeline.WeakO3)
		if err != nil {
			return Row{}, err
		}
		row := Row{Kernel: k.Name, Applied: out.Applied}
		if out.Applied {
			if energy {
				row.Value = out.PowerRatio
			} else {
				row.Value = out.Speedup
			}
		} else {
			row.Value = 1
			row.Note = reasonOf(out)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	f.Rows = rows
	f.Notes = append(f.Notes,
		"the ARM core is single-issue: SLMS parallelism can only hide latencies, so gains are smaller and bad cases more frequent (apply selectively)")
	corr := cycleEnergyCorrelation(f)
	if corr != "" {
		f.Notes = append(f.Notes, corr)
	}
	return f, nil
}

func cycleEnergyCorrelation(f *Figure) string {
	// Figures 21/22 correlate; computed when both series were produced.
	return ""
}

// CaseA reproduces the in-text kernel-8 bundle analysis: under the weak
// compiler the SLMSed loop body needs fewer bundles per iteration
// (paper: 23 → 16).
func CaseA() (*Figure, error) {
	k := Lookup("kernel8")
	d := machine.IA64Like()
	out, err := measureKernel8CaseA(*k, d)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "Case A",
		Title:  "kernel 8 bundle count, weak compiler (paper: 23 → 16 bundles)",
		Metric: "bundles per loop iteration (lower is better)",
		Series: []string{"original", "after SLMS"},
	}
	f.Rows = append(f.Rows, Row{
		Kernel:  "kernel8",
		Value:   hotLoopBundles(out.BaseArt, out.Base),
		Value2:  hotLoopBundles(out.SLMSArt, out.SLMS),
		Applied: out.Applied,
	})
	return f, nil
}

func measureKernel8CaseA(k Kernel, d *machine.Desc) (*pipeline.Outcome, error) {
	prog := source.MustParseCached(k.Source)
	return pipeline.RunExperiment(prog, pipeline.Experiment{
		Machine: d, Compiler: pipeline.WeakO3, SLMS: core.DefaultOptions(),
	}, k.Setup)
}

// CaseB reproduces the §9.2 floating-point-intensive loop: SLMS helps
// the strong compiler produce a denser schedule (paper: 5.8 → 4 bundles
// per iteration).
func CaseB() (*Figure, error) {
	src := `
		int n = 200;
		float X[210];
		for (k = 1; k < n; k++) {
			X[k] = X[k-1]*X[k-1]*X[k-1]*X[k-1]*X[k-1] +
				X[k+1]*X[k+1]*X[k+1]*X[k+1]*X[k+1];
		}
	`
	seed := seedArrays(map[string][]int{"X": {210}}, 99)
	// Keep values in (0,1) so fifth powers stay finite.
	prog := source.MustParse(src)
	out, err := pipeline.RunExperiment(prog, pipeline.Experiment{
		Machine: machine.IA64Like(), Compiler: pipeline.StrongO3, SLMS: core.DefaultOptions(),
	}, func(env *interp.Env) {
		seed(env)
		arr := env.Arrays["X"]
		for i := range arr.F {
			arr.F[i] = 0.2 + 0.6*arr.F[i]/2.0
		}
	})
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "Case B",
		Title:  "fp-intensive X[k] loop under the strong compiler (paper: 5.8 → 4 bundles/iter)",
		Metric: "cycles per iteration (lower is better)",
		Series: []string{"original", "after SLMS"},
	}
	f.Rows = append(f.Rows, Row{
		Kernel:  "xpow",
		Value:   cyclesPerIter(out.Base.Cycles, 199),
		Value2:  cyclesPerIter(out.SLMS.Cycles, 199),
		Applied: out.Applied,
	})
	return f, nil
}

func cyclesPerIter(c int64, iters int) float64 { return float64(c) / float64(iters) }

// hotLoopBundles returns the bundle count of the most-executed loop
// body (the kernels have one hot loop; transformed programs also contain
// a rarely-executed short-trip fallback copy).
func hotLoopBundles(art *pipeline.Artifact, m *sim.Metrics) float64 {
	best, bestExecs := 0, int64(-1)
	for id, s := range art.LoopSched {
		execs := int64(0)
		if id < len(m.ExecCounts) {
			execs = m.ExecCounts[id]
		}
		if execs > bestExecs {
			best, bestExecs = s.Bundles, execs
		}
	}
	return float64(best)
}

// FigureStat is the per-figure entry of the harness trajectory.
type FigureStat struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
	Rows        int     `json:"rows"`
}

// PhaseStat aggregates one pipeline phase over a harness run: how many
// times it ran and its total wall time (summed across workers, so the
// total can exceed the run's wall clock).
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// RunStats is the harness trajectory of one AllFigures run: wall time
// per figure, simulation throughput, artifact-cache effectiveness, and
// the phase-timing breakdown (aggregate and per kernel).
// cmd/slmsbench serializes it as BENCH_*.json.
type RunStats struct {
	Figures          []FigureStat `json:"figures"`
	TotalWallSeconds float64      `json:"total_wall_seconds"`
	SimulatedCycles  int64        `json:"simulated_cycles"`
	CyclesPerSecond  float64      `json:"cycles_per_second"`
	// CacheHits/CacheMisses total every caching layer under the harness;
	// Caches is the per-cache split (parse, transform, compile) and sums
	// exactly to the totals.
	CacheHits    int64       `json:"cache_hits"`
	CacheMisses  int64       `json:"cache_misses"`
	CacheHitRate float64     `json:"cache_hit_rate"`
	Caches       []CacheStat `json:"caches,omitempty"`
	Workers      int         `json:"workers"`
	GoMaxProcs   int         `json:"gomaxprocs"`
	// Phases aggregates each pipeline phase (parse, transform, compile,
	// sim, verify, ...) over this run, from the phase.* histograms of
	// the metrics registry.
	Phases []PhaseStat `json:"phases,omitempty"`
	// Kernels is the per-kernel phase-timing breakdown accumulated over
	// every measurement the process performed for these figures (the
	// measurement memo runs each (kernel, machine, compiler) once).
	Kernels []KernelStat `json:"kernels,omitempty"`
	// Precision is the dependence-precision census over the corpus
	// (legacy vs exact solver); the compare gate fails when the unknown
	// edge count grows against the committed baseline.
	Precision *PrecisionStat `json:"precision,omitempty"`
	// Optimality is the machine-level optimality census over the corpus
	// (heuristic vs exact scheduler, per loop); the compare gate fails
	// when a previously proven-optimal loop regresses.
	Optimality *OptgapStat `json:"optimality,omitempty"`
}

var figureGens = []struct {
	name string
	fn   func() (*Figure, error)
}{
	{"14", Figure14}, {"15", Figure15}, {"16", Figure16}, {"17", Figure17},
	{"18", Figure18}, {"19", Figure19}, {"20", Figure20},
	{"21", Figure21}, {"22", Figure22},
	{"caseA", CaseA}, {"caseB", CaseB},
	{"precision", FigurePrecision},
	{"optgap", FigureOptgap},
}

// AllFigures regenerates every evaluation figure in order. Figures are
// generated concurrently (each one's rows additionally fan out through
// the shared worker pool); the returned slice is always in figure
// order, and the first error in figure order wins.
func AllFigures() ([]*Figure, error) {
	figs, _, err := AllFiguresTimed()
	return figs, err
}

// AllFiguresTimed is AllFigures plus the harness trajectory: wall time
// per figure, cycles simulated, simulation throughput and artifact
// cache hit rate over the run.
func AllFiguresTimed() ([]*Figure, *RunStats, error) {
	startCaches := snapshotCaches()
	startSnap := obs.Default.Snapshot()
	obs.GaugeName("bench.workers").Set(int64(Workers()))
	start := time.Now()

	// Figures run on plain goroutines: a generator is orchestration (it
	// waits on its rows' pool work), so it must not hold a pool token
	// itself or nested waits could exhaust the pool and deadlock. Only
	// leaf measurements draw tokens, keeping concurrency bounded.
	type res struct {
		fig  *Figure
		err  error
		wall time.Duration
	}
	results := make([]res, len(figureGens))
	var wg sync.WaitGroup
	for i, g := range figureGens {
		wg.Add(1)
		go func(i int, fn func() (*Figure, error)) {
			defer wg.Done()
			t0 := time.Now()
			f, err := fn()
			results[i] = res{fig: f, err: err, wall: time.Since(t0)}
		}(i, g.fn)
	}
	wg.Wait()

	stats := &RunStats{Workers: Workers(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	var out []*Figure
	for i, r := range results {
		if r.err != nil {
			return nil, nil, fmt.Errorf("figure %s: %w", figureGens[i].name, r.err)
		}
		out = append(out, r.fig)
		stats.Figures = append(stats.Figures, FigureStat{
			ID: r.fig.ID, WallSeconds: r.wall.Seconds(), Rows: len(r.fig.Rows),
		})
	}
	stats.TotalWallSeconds = time.Since(start).Seconds()
	endSnap := obs.Default.Snapshot()
	// Per-run cycle count: the sim.cycles registry counter's growth over
	// this run, not a never-resetting package global (which conflated
	// concurrent harness runs).
	stats.SimulatedCycles = endSnap.Counters["sim.cycles"] - startSnap.Counters["sim.cycles"]
	if stats.TotalWallSeconds > 0 {
		stats.CyclesPerSecond = float64(stats.SimulatedCycles) / stats.TotalWallSeconds
	}
	stats.Caches = startCaches.delta(snapshotCaches())
	for _, cs := range stats.Caches {
		stats.CacheHits += cs.Hits
		stats.CacheMisses += cs.Misses
	}
	if total := stats.CacheHits + stats.CacheMisses; total > 0 {
		stats.CacheHitRate = float64(stats.CacheHits) / float64(total)
	}
	stats.Phases = phaseDelta(startSnap, endSnap)
	stats.Kernels = kernelStats()
	// The precision census is transform-only (no simulation), cheap
	// enough to stamp on every trajectory so the compare gate can hold
	// the unknown-edge count at the baseline.
	if _, psum, perr := PrecisionCensus(PrecisionCorpus()); perr == nil {
		stats.Precision = &psum
	}
	// So is the optimality census (static scheduling only): stamping it
	// on every trajectory lets the compare gate hold each loop's
	// proven-optimal verdict at its baseline.
	if _, osum, oerr := OptgapCensus(OptgapCorpus(), "standard"); oerr == nil {
		stats.Optimality = &osum
	}
	return out, stats, nil
}

// phaseDelta extracts the phase.* histogram growth between two registry
// snapshots as sorted PhaseStats (phases that did not run are omitted).
func phaseDelta(before, after obs.Snapshot) []PhaseStat {
	var out []PhaseStat
	for name, h := range after.Histograms {
		if !strings.HasPrefix(name, "phase.") {
			continue
		}
		prev := before.Histograms[name]
		if d := h.Count - prev.Count; d > 0 {
			out = append(out, PhaseStat{
				Phase:   strings.TrimPrefix(name, "phase."),
				Count:   d,
				Seconds: h.Seconds - prev.Seconds,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// FigureIDs lists the available figure identifiers.
func FigureIDs() []string {
	ids := []string{"14", "15", "16", "17", "18", "19", "20", "21", "22", "caseA", "caseB", "precision", "optgap"}
	sort.Strings(ids)
	return ids
}

// Summary regenerates every figure and condenses it to one line each —
// the reproduction's one-page scoreboard.
func Summary() (string, error) {
	figs, err := AllFigures()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("SLMS reproduction scoreboard (geometric means over applied loops)\n")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	for _, f := range figs {
		gm, n := f.geoMeanApplied()
		switch f.ID {
		case "Case A", "Case B":
			fmt.Fprintf(&b, "%-10s %-42.42s %6.1f -> %.1f\n", f.ID, f.Title, f.Rows[0].Value, f.Rows[0].Value2)
		default:
			fmt.Fprintf(&b, "%-10s %-42.42s %6.3f (%d loops)\n", f.ID, f.Title, gm, n)
		}
	}
	return b.String(), nil
}

// ByID regenerates one figure.
func ByID(id string) (*Figure, error) {
	for _, g := range figureGens {
		if g.name == id {
			return g.fn()
		}
	}
	return nil, fmt.Errorf("bench: unknown figure %q (known: %v)", id, FigureIDs())
}
