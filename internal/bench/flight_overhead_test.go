package bench

import (
	"os"
	"testing"
	"time"

	"slms/internal/obs/flight"
)

// The always-on flight recorder must be unmeasurable on the serving
// path: this guard bounds its worst-case per-request cost at under 1%
// of an average request's compute on the bench corpus. Like the
// disabled-tracer guard above it, the bound is computed, not timed end
// to end: micro-benchmarks price one ring record on both paths (the
// zero-allocation fast-path twin and the full slow-path capture), one
// untraced AllFigures run supplies the corpus's real per-row compute
// cost, and the pricier of the two records must stay under 1% of it.
// Env-gated for the same reason: it runs the whole figure suite; CI
// sets SLMS_OVERHEAD_CHECK=1.
func TestFlightRecorderOverheadUnderOnePercent(t *testing.T) {
	if os.Getenv("SLMS_OVERHEAD_CHECK") == "" {
		t.Skip("set SLMS_OVERHEAD_CHECK=1 to run the overhead guard")
	}

	// Price one record on each capture path, recorder enabled with the
	// production defaults and a realistic request body.
	rec := flight.New(flight.Config{Cooldown: time.Hour})
	ring := rec.Endpoint("compile")
	body := []byte(`{"source": "float A[100]; float B[100]; float t = 0.0; float s = 0.0;` +
		` for (i = 0; i < 100; i++) { t = A[i] * B[i]; s = s + t; }"}`)

	fastOp := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ring.RecordFast(200, "r00000042", "6ea98a2c6f0d4e6d", 517*time.Microsecond, body)
		}
	})
	slowObs := flight.Obs{
		Status: 200, RequestID: "r00000042", Fingerprint: "6ea98a2c6f0d4e6d",
		Cache: "miss", DeadlineMS: 9999, Dur: 517 * time.Microsecond, Body: body,
		Spans:     []flight.SpanNote{{Name: "server.compile", DurUS: 517}},
		Decisions: []flight.DecisionNote{{Loop: "1:40", Code: "SLMS220", Verdict: "apply"}},
	}
	slowOp := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ring.Record(slowObs)
		}
	})
	perRecord := fastOp.NsPerOp()
	if slowOp.NsPerOp() > perRecord {
		perRecord = slowOp.NsPerOp()
	}

	// The corpus's real compute: every figure row is one pipeline
	// request's worth of work, so wall/rows is what an average served
	// request costs — and what one record is priced against.
	ResetHarnessState()
	start := time.Now()
	figs, err := AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	rows := 0
	for _, f := range figs {
		rows += len(f.Rows)
	}
	if rows == 0 {
		t.Fatal("bench corpus produced no rows")
	}

	perRequest := wall.Nanoseconds() / int64(rows)
	budget := perRequest / 100
	t.Logf("record cost: fast %dns, slow %dns; corpus: %d rows in %v (%dns/request, 1%% budget %dns)",
		fastOp.NsPerOp(), slowOp.NsPerOp(), rows, wall, perRequest, budget)
	if perRecord > budget {
		t.Errorf("flight record cost %dns exceeds 1%% of the corpus per-request compute %dns",
			perRecord, perRequest)
	}
}
