package bench

import (
	"reflect"
	"testing"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/sim"
	"slms/internal/source"
)

// TestHarnessDeterminism checks that the fast path — parallel figure
// generation over the shared pool, with the artifact/transform caches
// and the measurement memo all hot — renders byte-identical figure
// tables to a serial run with every cache disabled.
func TestHarnessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full figure suite twice")
	}
	render := func() map[string]string {
		figs, err := AllFigures()
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, f := range figs {
			out[f.ID] = f.Table()
		}
		return out
	}

	ResetMeasurements()
	parallel := render()

	oldWorkers := Workers()
	SetWorkers(1)
	pipeline.SetCacheEnabled(false)
	core.SetTransformCacheEnabled(false)
	ResetMeasurements()
	defer func() {
		SetWorkers(oldWorkers)
		pipeline.SetCacheEnabled(true)
		core.SetTransformCacheEnabled(true)
		ResetMeasurements()
	}()
	serial := render()

	if len(parallel) != len(serial) {
		t.Fatalf("figure count differs: parallel %d, serial %d", len(parallel), len(serial))
	}
	for id, want := range serial {
		if got := parallel[id]; got != want {
			t.Errorf("%s: parallel+cached table differs from serial+uncached:\n--- serial ---\n%s--- parallel ---\n%s", id, want, got)
		}
	}
}

// TestCachedArtifactMetricsIdentical checks that simulating a cached
// artifact produces exactly the metrics of a fresh compilation — the
// cache must be semantically invisible, execution counts included.
func TestCachedArtifactMetricsIdentical(t *testing.T) {
	d := machine.IA64Like()
	for _, name := range []string{"kernel1", "kernel8", "daxpy"} {
		k := Lookup(name)
		prog := source.MustParseCached(k.Source)
		for _, cc := range []pipeline.Compiler{pipeline.WeakO3, pipeline.StrongO3, pipeline.WeakNoO3} {
			fresh, err := pipeline.CompileFor(prog, d, cc)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cc.Name, err)
			}
			cached, err := pipeline.CompileForCached(prog, d, cc)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cc.Name, err)
			}
			envF := newSeededEnv(*k)
			mFresh, err := sim.Run(fresh.Func, d, fresh.Plan, envF, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cc.Name, err)
			}
			envC := newSeededEnv(*k)
			mCached, err := sim.Run(cached.Func, d, cached.Plan, envC, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cc.Name, err)
			}
			if !reflect.DeepEqual(mFresh, mCached) {
				t.Errorf("%s/%s: cached artifact metrics differ\nfresh:  %+v\ncached: %+v", name, cc.Name, mFresh, mCached)
			}
		}
	}
}

// TestRepeatedSimulationOfSharedArtifact checks artifact immutability:
// simulating one artifact many times (as concurrent harness workers do)
// keeps yielding identical metrics.
func TestRepeatedSimulationOfSharedArtifact(t *testing.T) {
	k := Lookup("kernel10") // spill-heavy: exercises spill-slot addressing
	prog := source.MustParseCached(k.Source)
	d := machine.PentiumLike()
	art, err := pipeline.CompileForCached(prog, d, pipeline.WeakO3)
	if err != nil {
		t.Fatal(err)
	}
	var first *sim.Metrics
	for i := 0; i < 3; i++ {
		env := newSeededEnv(*k)
		m, err := sim.Run(art.Func, d, art.Plan, env, 0)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = m
		} else if !reflect.DeepEqual(first, m) {
			t.Fatalf("run %d metrics differ from run 0:\nfirst: %+v\nthis:  %+v", i, first, m)
		}
	}
}
