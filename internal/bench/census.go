package bench

import (
	"fmt"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/sim"
	"slms/internal/source"
)

// CensusRow records whether the strong compiler's machine-level modulo
// scheduler fired on a loop before and after SLMS.
type CensusRow struct {
	Kernel       string
	SLMSApplied  bool
	IMSBefore    bool
	IMSAfter     bool
	BeforeReason string
	AfterReason  string
	Speedup      float64
}

// Census reproduces the paper's §9.2 statistic: "out of 31 loops that
// were tested, ICC performed MS both before and after SLMS for 26 of
// those loops. For three loops ... ICC did not apply MS but SLMS did ...
// For two loops ... ICC performed MS only before SLMS." It runs every
// kernel under the strong compiler and reports, per loop, whether the
// machine-level modulo scheduler accepted the hot loop body before and
// after the source-level transformation.
func Census() ([]CensusRow, error) {
	d := machine.IA64Like()
	var rows []CensusRow
	for _, k := range Kernels() {
		prog := source.MustParse(k.Source)
		out, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: d, Compiler: pipeline.StrongO3, SLMS: core.DefaultOptions(),
		}, k.Setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		row := CensusRow{Kernel: k.Name, SLMSApplied: out.Applied, Speedup: out.Speedup}
		row.IMSBefore, row.BeforeReason = hotIMS(out.BaseArt, out.Base)
		row.IMSAfter, row.AfterReason = hotIMS(out.SLMSArt, out.SLMS)
		rows = append(rows, row)
	}
	return rows, nil
}

// hotIMS reports the machine-MS outcome on the most-executed loop body.
func hotIMS(art *pipeline.Artifact, m *sim.Metrics) (bool, string) {
	hot, hotExecs := -1, int64(-1)
	for id := range art.LoopSched {
		execs := int64(0)
		if id < len(m.ExecCounts) {
			execs = m.ExecCounts[id]
		}
		if execs > hotExecs {
			hot, hotExecs = id, execs
		}
	}
	if hot < 0 {
		return false, "no loop body"
	}
	r := art.IMSResults[hot]
	if r == nil {
		return false, "loop body not considered"
	}
	if r.OK {
		return true, ""
	}
	return false, r.Reason
}

// CensusTable renders the census.
func CensusTable(rows []CensusRow) string {
	out := "Machine-level MS census under the strong compiler (paper §9.2)\n"
	out += fmt.Sprintf("%-10s %6s %10s %10s %9s\n", "kernel", "slms", "MS before", "MS after", "speedup")
	both, onlyBefore, onlyAfter, neither := 0, 0, 0, 0
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %6v %10v %10v %9.3f\n",
			r.Kernel, r.SLMSApplied, r.IMSBefore, r.IMSAfter, r.Speedup)
		switch {
		case r.IMSBefore && r.IMSAfter:
			both++
		case r.IMSBefore:
			onlyBefore++
		case r.IMSAfter:
			onlyAfter++
		default:
			neither++
		}
	}
	out += fmt.Sprintf("summary: MS before & after: %d; only before: %d; only after: %d; neither: %d (of %d loops)\n",
		both, onlyBefore, onlyAfter, neither, len(rows))
	out += "paper: 26 both, 2 only before (kernel 8, idamax2), 3 neither-but-SLMS (kernels 2, 7, 24)\n"
	return out
}
