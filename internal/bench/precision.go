package bench

import (
	"fmt"
	"strings"

	"slms/internal/core"
	"slms/internal/source"
)

// PrecisionKernels are synthetic loops exercising the exact dependence
// solver: each one is conservative-unknown (or carries an unrealizable
// distance) under the legacy subscript test and is decided by the
// Omega-lite solver. They are deliberately NOT part of Kernels(), so
// the paper-figure suites and their committed baselines are unaffected;
// only the precision census and figure consume them.
func PrecisionKernels() []Kernel {
	return []Kernel{
		{
			Name: "stride2", Suite: "precision",
			Source: `float A[256]; float B[256];
for (i = 0; i < 100; i++) {
  A[2*i] = A[i] * 0.5 + B[i];
}
`,
			Setup: seedArrays(map[string][]int{"A": {256}, "B": {256}}, 41),
		},
		{
			Name: "symoff", Suite: "precision",
			Source: `int m = 4; float A[128]; float B[128];
for (i = 0; i < 100; i++) {
  A[i+m+1] = A[i+m] * 0.5 + B[i];
}
`,
			Setup: seedArrays(map[string][]int{"A": {128}, "B": {128}}, 42),
		},
		{
			Name: "tripkill", Suite: "precision",
			Source: `float A[512]; float B[512];
for (i = 0; i < 100; i++) {
  A[i+200] = A[i] * 0.9 + B[i];
}
`,
			Setup: seedArrays(map[string][]int{"A": {512}, "B": {512}}, 43),
		},
		{
			Name: "tripkill_sym", Suite: "precision",
			Source: `int n = 100; float A[512]; float B[512];
for (i = 0; i < n; i++) {
  A[i+n] = A[i] * 0.9 + B[i];
}
`,
			Setup: seedArrays(map[string][]int{"A": {512}, "B": {512}}, 44),
		},
		{
			Name: "parity", Suite: "precision",
			Source: `float A[256]; float B[256];
for (i = 0; i < 100; i++) {
  A[2*i+1] = A[2*i] * 0.8 + B[i];
}
`,
			Setup: seedArrays(map[string][]int{"A": {256}, "B": {256}}, 45),
		},
		{
			// A secondary counter walking in lock-step with the loop: the
			// solver promotes A[j]/A[j+2] to closed form over the iteration
			// counter, where the legacy test demotes them to unknown.
			Name: "indsub", Suite: "precision",
			Source: `int j; float A[200]; float B[100];
for (i = 0; i < 100; i++) {
  B[i] = A[j] + A[j+2];
  A[j+2] = B[i] * 0.5;
  j = j + 1;
}
`,
			Setup: seedArrays(map[string][]int{"A": {200}, "B": {100}}, 48),
		},
		{
			// Legacy analysis carries the distance-2 recurrence and
			// schedules at II=2; the solver proves the loop runs only two
			// iterations, so no distance-2 pair is realizable and II=1.
			Name: "tripshort", Suite: "precision",
			Source: `float A[200]; float B[200]; float t; float u; float v;
for (i = 2; i < 4; i++) {
  t = A[i-2] * 0.5;
  u = t + B[i];
  v = u * 1.5;
  A[i] = v;
}
`,
			Setup: seedArrays(map[string][]int{"A": {200}, "B": {200}}, 47),
		},
		{
			Name: "guarded", Suite: "precision",
			Source: `int m; float A[512]; float B[512];
if (m >= 200) {
  for (i = 0; i < 100; i++) {
    A[i+m] = A[i] * 0.7 + B[i];
  }
}
`,
			Setup: seedArrays(map[string][]int{"A": {512}, "B": {512}}, 46),
		},
	}
}

// PrecisionCorpus is every loop the precision census runs over: the
// full paper-benchmark corpus plus the solver-targeted kernels.
func PrecisionCorpus() []Kernel {
	return append(Kernels(), PrecisionKernels()...)
}

// PrecisionRow is one kernel's legacy-vs-exact dependence comparison.
type PrecisionRow struct {
	Kernel string `json:"kernel"`
	Suite  string `json:"suite"`
	// Unknown dependence edges summed over the kernel's loops, with the
	// solver disabled (legacy subscript test) and enabled.
	UnknownLegacy int `json:"unknown_legacy"`
	UnknownExact  int `json:"unknown_exact"`
	// Solver precision counters summed over the kernel's loops.
	Pairs    int `json:"pairs"`
	Resolved int `json:"resolved"`
	Killed   int `json:"killed"`
	Promoted int `json:"promoted"`
	// Best II per mode; 0 means the loop did not schedule.
	IILegacy int64 `json:"ii_legacy"`
	IIExact  int64 `json:"ii_exact"`
	// NewlyPipelined: scheduled only with the solver. LowerII: scheduled
	// in both modes, strictly lower II with the solver.
	NewlyPipelined bool `json:"newly_pipelined"`
	LowerII        bool `json:"lower_ii"`
}

// PrecisionStat summarizes the census; cmd/slmsbench serializes it into
// the BENCH_*.json trajectory, and the CI compare gate fails when
// UnknownExact grows against the committed baseline.
type PrecisionStat struct {
	Kernels        int `json:"kernels"`
	Pairs          int `json:"pairs"`
	UnknownLegacy  int `json:"unknown_edges_legacy"`
	UnknownExact   int `json:"unknown_edges_exact"`
	ResolvedPairs  int `json:"resolved_pairs"`
	TripKilled     int `json:"trip_killed"`
	Promoted       int `json:"promoted_inductions"`
	NewlyPipelined int `json:"loops_newly_pipelined"`
	LowerII        int `json:"loops_lower_ii"`
}

// PrecisionCensus transforms every kernel twice — solver disabled
// (legacy conservative subscript test) and enabled — and tabulates the
// dependence-precision delta: unknown edges before/after, solver
// resolution counters, and which loops only pipeline (or reach a
// strictly lower II) with exact analysis. Pure static analysis: no
// simulation, so the census is cheap and fully deterministic.
func PrecisionCensus(kernels []Kernel) ([]PrecisionRow, PrecisionStat, error) {
	var rows []PrecisionRow
	var sum PrecisionStat
	for _, k := range kernels {
		legacy := core.DefaultOptions()
		legacy.NoSolver = true
		rl, err := transformStats(k.Source, legacy)
		if err != nil {
			return nil, sum, fmt.Errorf("%s (legacy): %w", k.Name, err)
		}
		re, err := transformStats(k.Source, core.DefaultOptions())
		if err != nil {
			return nil, sum, fmt.Errorf("%s (exact): %w", k.Name, err)
		}
		row := PrecisionRow{
			Kernel: k.Name, Suite: k.Suite,
			UnknownLegacy: rl.unknown, UnknownExact: re.unknown,
			Pairs: re.pairs, Resolved: re.resolved, Killed: re.killed, Promoted: re.promoted,
			IILegacy: rl.bestII, IIExact: re.bestII,
			NewlyPipelined: re.bestII > 0 && rl.bestII == 0,
			LowerII:        re.bestII > 0 && rl.bestII > 0 && re.bestII < rl.bestII,
		}
		rows = append(rows, row)
		sum.Kernels++
		sum.Pairs += row.Pairs
		sum.UnknownLegacy += row.UnknownLegacy
		sum.UnknownExact += row.UnknownExact
		sum.ResolvedPairs += row.Resolved
		sum.TripKilled += row.Killed
		sum.Promoted += row.Promoted
		if row.NewlyPipelined {
			sum.NewlyPipelined++
		}
		if row.LowerII {
			sum.LowerII++
		}
	}
	return rows, sum, nil
}

// modeStats aggregates one transform mode over a kernel's loops.
type modeStats struct {
	unknown, pairs, resolved, killed, promoted int
	bestII                                     int64
}

func transformStats(src string, opts core.Options) (modeStats, error) {
	var st modeStats
	prog := source.MustParse(src)
	_, results, err := core.TransformProgram(prog, opts)
	if err != nil {
		return st, err
	}
	for _, res := range results {
		if res.Applied && (st.bestII == 0 || res.II < st.bestII) {
			st.bestII = res.II
		}
		if res.Dep == nil {
			continue
		}
		st.unknown += res.Dep.UnknownEdges()
		p := res.Dep.Precision
		st.pairs += p.Pairs
		st.resolved += p.Resolved
		st.killed += p.Killed
		st.promoted += p.Promoted
	}
	return st, nil
}

// FigurePrecision renders the census as the "precision" figure: per
// kernel, unknown dependence edges under the legacy test vs the exact
// solver, annotated with the pipelining consequence.
func FigurePrecision() (*Figure, error) {
	rows, sum, err := PrecisionCensus(PrecisionCorpus())
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "precision",
		Title:  "Dependence precision: unknown edges, legacy test vs exact solver",
		Metric: "unknown dependence edges (lower is better)",
		Series: []string{"legacy", "exact"},
	}
	for _, r := range rows {
		note := ""
		switch {
		case r.NewlyPipelined:
			note = fmt.Sprintf("newly pipelined (II=%d)", r.IIExact)
		case r.LowerII:
			note = fmt.Sprintf("II %d -> %d", r.IILegacy, r.IIExact)
		case r.Resolved > 0 || r.Killed > 0:
			note = fmt.Sprintf("resolved %d pair(s), killed %d", r.Resolved, r.Killed)
		}
		f.Rows = append(f.Rows, Row{
			Kernel:  r.Kernel,
			Value:   float64(r.UnknownLegacy),
			Value2:  float64(r.UnknownExact),
			Applied: r.IIExact > 0,
			Note:    note,
		})
	}
	resolvedPct := 0.0
	if sum.UnknownLegacy > 0 {
		resolvedPct = 100 * float64(sum.UnknownLegacy-sum.UnknownExact) / float64(sum.UnknownLegacy)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("corpus: %d kernels, %d subscript pairs; unknown edges %d -> %d (%.0f%% resolved)",
			sum.Kernels, sum.Pairs, sum.UnknownLegacy, sum.UnknownExact, resolvedPct),
		fmt.Sprintf("%d loop(s) newly pipelined, %d at strictly lower II; %d distance(s) trip-killed, %d induction subscript(s) promoted",
			sum.NewlyPipelined, sum.LowerII, sum.TripKilled, sum.Promoted),
	)
	return f, nil
}

// PrecisionTable renders the census as an aligned text table (the
// slmsbench -census companion for dependence precision).
func PrecisionTable(rows []PrecisionRow, sum PrecisionStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dependence precision census (%d kernels)\n", sum.Kernels)
	fmt.Fprintf(&b, "%-14s %8s %8s %9s %7s %10s\n", "kernel", "unk-old", "unk-new", "resolved", "killed", "II old->new")
	for _, r := range rows {
		ii := "-"
		if r.IILegacy > 0 || r.IIExact > 0 {
			ii = fmt.Sprintf("%d->%d", r.IILegacy, r.IIExact)
		}
		fmt.Fprintf(&b, "%-14s %8d %8d %9d %7d %10s\n",
			r.Kernel, r.UnknownLegacy, r.UnknownExact, r.Resolved, r.Killed, ii)
	}
	fmt.Fprintf(&b, "total unknown edges: %d -> %d; %d newly pipelined, %d lower II\n",
		sum.UnknownLegacy, sum.UnknownExact, sum.NewlyPipelined, sum.LowerII)
	return b.String()
}
