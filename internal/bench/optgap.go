package bench

import (
	"fmt"
	"strings"

	"slms/internal/backend"
	"slms/internal/ims"
	"slms/internal/machine"
	"slms/internal/sched"
	"slms/internal/source"
)

// OptgapKernels are synthetic loops exercising the exact modulo
// scheduler: recurrence/resource interactions where the heuristic's
// height-priority placement is (or is close to) suboptimal, so the
// optimality census always has verdicts of every kind to regress
// against. They are deliberately NOT part of Kernels(): the
// paper-figure suites and their committed baselines are unaffected;
// only the optimality census and figure consume them.
func OptgapKernels() []Kernel {
	return []Kernel{
		{
			// A floating recurrence crossed with independent memory
			// traffic: the heuristic lands at a double-digit II whose
			// branch-and-bound refutation space is beyond the standard
			// budget, pinning the budget-exhausted verdict in the census.
			Name: "optrec", Suite: "optgap",
			Source: `float A[300]; float B[300]; float C[300]; float D[300];
for (i = 1; i < 200; i++) {
  A[i] = A[i-1] * 0.5 + B[i];
  C[i] = B[i] * 2.0 + D[i];
  D[i] = C[i] + 1.0;
}
`,
			Setup: seedArrays(map[string][]int{"A": {300}, "B": {300}, "C": {300}, "D": {300}}, 61),
		},
		{
			// Memory-unit saturation: five independent streams over two
			// memory ports hold ResMII high while the dependence height is
			// trivial — another undecidable-at-standard-budget shape.
			Name: "optmem", Suite: "optgap",
			Source: `float A[300]; float B[300]; float C[300]; float D[300]; float E[300];
for (i = 0; i < 200; i++) {
  A[i] = B[i] + C[i];
  D[i] = E[i] + B[i];
  C[i+1] = A[i] * 0.5;
}
`,
			Setup: seedArrays(map[string][]int{"A": {300}, "B": {300}, "C": {300}, "D": {300}, "E": {300}}, 62),
		},
		{
			// A long float chain folded back over distance 2: RecMII ≈ 10,
			// and refuting II−1 means exhausting ten residue rows per node
			// — the budget cut fires well before the space is covered.
			Name: "optchain", Suite: "optgap",
			Source: `float A[300]; float B[300];
for (i = 2; i < 200; i++) {
  A[i] = (A[i-2] * 0.5 + B[i]) * 0.25 + B[i-1];
}
`,
			Setup: seedArrays(map[string][]int{"A": {300}, "B": {300}}, 63),
		},
		{
			// Found by random search over coupled float recurrences: the
			// height-priority heuristic places the F-recurrence chain so
			// that the memory rows at the recurrence-bound II are already
			// committed, and every eviction walk exhausts its budget; the
			// exact scheduler proves the lower II feasible (heuristic II=6,
			// minimal II=5 on the ia64-like machine).
			Name: "heurmiss", Suite: "optgap",
			Source: `float A[300]; float B[300]; float D[300]; float E[300]; float F[300];
for (i = 3; i < 200; i++) {
  F[i] = (E[i-3] + B[i-1]) * 0.25 + F[i-2];
  D[i] = D[i] + E[i-3] * 0.5;
  A[i] = D[i-2] + E[i-3] * 0.5;
}
`,
			Setup: seedArrays(map[string][]int{"A": {300}, "B": {300}, "D": {300}, "E": {300}, "F": {300}}, 64),
		},
		{
			// Second search find, same family, different binding structure
			// (a loop-invariant scalar feeding a store stream plus two
			// carried recurrences): heuristic II=8, proven minimum II=7.
			Name: "heurmiss2", Suite: "optgap",
			Source: `float B[300]; float D[300]; float E[300]; float F[300];
float t = 1.0;
for (i = 3; i < 200; i++) {
  B[i] = t * F[i-2];
  D[i] = (F[i-2] + E[i]) * 0.25 + D[i-1];
  E[i] = (F[i-3] * B[i-3]) * 0.25 + B[i];
}
`,
			Setup: seedArrays(map[string][]int{"B": {300}, "D": {300}, "E": {300}, "F": {300}}, 65),
		},
	}
}

// OptgapCorpus is every loop the optimality census runs over: the full
// paper-benchmark corpus plus the scheduler-targeted kernels.
func OptgapCorpus() []Kernel {
	return append(Kernels(), OptgapKernels()...)
}

// OptgapRow is one loop's heuristic-vs-exact scheduling verdict.
type OptgapRow struct {
	Kernel string `json:"kernel"`
	Suite  string `json:"suite"`
	// Loop numbers the counted innermost loop bodies of the kernel in
	// block order (1-based); Kernel+Loop is the census key.
	Loop    int    `json:"loop"`
	Verdict string `json:"verdict"` // a sched.Verdict* value
	HeurII  int    `json:"heur_ii,omitempty"`
	ExactII int    `json:"exact_ii,omitempty"`
	Gap     int    `json:"gap,omitempty"`
	// Cert is the human-readable certificate: why II−1 is impossible
	// (proven-optimal/gap) or why the verdict is undecided.
	Cert string `json:"cert,omitempty"`
}

// OptgapStat summarizes the optimality census; cmd/slmsbench serializes
// it into the BENCH_*.json trajectory (RunStats.Optimality), and the CI
// compare gate fails when a previously proven-optimal loop regresses.
type OptgapStat struct {
	Loops         int `json:"loops"`
	ProvenOptimal int `json:"proven_optimal"`
	Gaps          int `json:"gaps"`
	ExactOnly     int `json:"exact_only"`
	Budget        int `json:"budget_exhausted"`
	Infeasible    int `json:"infeasible"`
	MaxGap        int `json:"max_gap"`
	// Rows carries the per-loop verdicts so the gate can hold each loop
	// (not just the totals) at its baseline.
	Rows []OptgapRow `json:"rows,omitempty"`
}

// OptgapCensus runs the heuristic scheduler over every counted
// innermost loop body of every kernel (on the ia64-like reference VLIW,
// the paper's primary machine) and proves each achieved II against the
// SDC-based exact scheduler at the given effort ("" = "standard").
// Pure static scheduling: no simulation, so the census is cheap and
// fully deterministic.
func OptgapCensus(kernels []Kernel, effort string) ([]OptgapRow, OptgapStat, error) {
	var rows []OptgapRow
	var sum OptgapStat
	if effort == "" {
		effort = "standard"
	}
	d := machine.IA64Like()
	cfg, err := ims.EffortConfig("", effort)
	if err != nil {
		return nil, sum, err
	}
	for _, k := range kernels {
		prog, err := source.Parse(k.Source)
		if err != nil {
			return nil, sum, fmt.Errorf("%s: %w", k.Name, err)
		}
		f, err := backend.Compile(prog)
		if err != nil {
			return nil, sum, fmt.Errorf("%s: %w", k.Name, err)
		}
		backend.LocalCSE(f)
		loop := 0
		for _, b := range f.Blocks {
			if !b.IsLoopBody || !b.Counted {
				continue
			}
			loop++
			res := ims.ScheduleWith(b, d, true, cfg)
			if res.Opt == nil {
				continue // empty body: nothing was scheduled or proven
			}
			o := res.Opt
			row := OptgapRow{
				Kernel: k.Name, Suite: k.Suite, Loop: loop,
				Verdict: o.Verdict,
				HeurII:  o.HeurII, ExactII: o.ExactII, Gap: o.Gap,
				Cert: o.Cert,
			}
			rows = append(rows, row)
			sum.Loops++
			switch o.Verdict {
			case sched.VerdictOptimal:
				sum.ProvenOptimal++
			case sched.VerdictGap:
				sum.Gaps++
				if o.Gap > sum.MaxGap {
					sum.MaxGap = o.Gap
				}
			case sched.VerdictExactOnly:
				sum.ExactOnly++
			case sched.VerdictInfeasible:
				sum.Infeasible++
			default:
				sum.Budget++
			}
		}
	}
	sum.Rows = rows
	return rows, sum, nil
}

// FigureOptgap renders the census as the "optgap" figure: per loop, the
// heuristic's II next to the proven-minimal II, annotated with the
// optimality verdict.
func FigureOptgap() (*Figure, error) {
	rows, sum, err := OptgapCensus(OptgapCorpus(), "standard")
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "optgap",
		Title:  "Optimality gap: heuristic II vs proven-minimal II (exact SDC scheduler, ia64)",
		Metric: "initiation interval (lower is better; equal = heuristic proven optimal)",
		Series: []string{"heuristic", "exact"},
	}
	for _, r := range rows {
		name := r.Kernel
		if r.Loop > 1 {
			name = fmt.Sprintf("%s#%d", r.Kernel, r.Loop)
		}
		note := ""
		switch r.Verdict {
		case sched.VerdictGap:
			note = fmt.Sprintf("gap %d", r.Gap)
		case sched.VerdictExactOnly:
			note = "heuristic found no schedule"
		case sched.VerdictBudget:
			note = "budget exhausted"
		case sched.VerdictInfeasible:
			note = "infeasible"
		}
		f.Rows = append(f.Rows, Row{
			Kernel:  name,
			Value:   float64(r.HeurII),
			Value2:  float64(r.ExactII),
			Applied: r.Verdict == sched.VerdictOptimal || r.Verdict == sched.VerdictGap,
			Note:    note,
		})
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("corpus: %d loops; %d proven optimal, %d with a gap (max %d), %d exact-only, %d budget-exhausted, %d infeasible",
			sum.Loops, sum.ProvenOptimal, sum.Gaps, sum.MaxGap, sum.ExactOnly, sum.Budget, sum.Infeasible))
	return f, nil
}

// OptgapTable renders the census as an aligned text table (the
// slmsbench -optgap report).
func OptgapTable(rows []OptgapRow, sum OptgapStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine-level optimality census (%d loops, ia64-like VLIW)\n", sum.Loops)
	fmt.Fprintf(&b, "%-14s %4s %8s %9s %5s  %s\n", "kernel", "loop", "heur II", "exact II", "gap", "verdict")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %4d %8d %9d %5d  %s\n",
			r.Kernel, r.Loop, r.HeurII, r.ExactII, r.Gap, r.Verdict)
	}
	fmt.Fprintf(&b, "proven optimal: %d/%d; gaps: %d (max %d); exact-only: %d; budget-exhausted: %d; infeasible: %d\n",
		sum.ProvenOptimal, sum.Loops, sum.Gaps, sum.MaxGap, sum.ExactOnly, sum.Budget, sum.Infeasible)
	return b.String()
}
