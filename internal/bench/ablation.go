package bench

import (
	"fmt"
	"math"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/source"
)

// Ablations quantify the design choices the paper (and this
// reproduction) makes: the §4 bad-case filter, the choice between MVE
// and scalar expansion, the short-trip guard, and the strong compiler's
// memory disambiguation. Each returns a Figure so cmd/slmsbench and the
// benchmarks can render them uniformly.

// AblationFilter measures what the §4 filter buys: the per-loop speedup
// with the filter disabled (value) vs enabled (value2). Loops the filter
// skips keep speedup 1.0 when enabled; if the filter is well calibrated,
// the enabled column's geometric mean is at least the disabled one.
func AblationFilter() (*Figure, error) {
	d := machine.IA64Like()
	f := &Figure{
		ID:     "Ablation A1",
		Title:  "the §4 bad-case filter (weak compiler, ia64)",
		Metric: "speedup without filter vs with filter (filtered loops pinned to 1.0)",
		Series: []string{"no filter", "filter"},
	}
	for _, k := range Kernels() {
		prog := source.MustParse(k.Source)
		off := core.DefaultOptions()
		off.Filter = false
		outOff, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: d, Compiler: pipeline.WeakO3, SLMS: off,
		}, k.Setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		outOn, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: d, Compiler: pipeline.WeakO3, SLMS: core.DefaultOptions(),
		}, k.Setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		von, voff := 1.0, 1.0
		if outOff.Applied {
			voff = outOff.Speedup
		}
		if outOn.Applied {
			von = outOn.Speedup
		}
		note := ""
		if outOff.Applied && !outOn.Applied {
			note = "filtered"
		}
		f.Rows = append(f.Rows, Row{Kernel: k.Name, Value: voff, Value2: von,
			Applied: outOff.Applied || outOn.Applied, Note: note})
	}
	return f, nil
}

// AblationExpansion compares the two §5-step-6c mechanisms on every loop
// where SLMS applies: MVE (kernel unrolling + register renaming) vs
// scalar expansion (temporary arrays). The paper reports "SLMS was
// tested with and without source level MVE, the presented results show
// the best time obtained" — this ablation is that comparison, made
// explicit.
func AblationExpansion() (*Figure, error) {
	d := machine.IA64Like()
	f := &Figure{
		ID:     "Ablation A2",
		Title:  "MVE vs scalar expansion (weak compiler, ia64)",
		Metric: "speedup with MVE vs with scalar expansion",
		Series: []string{"MVE", "scalar-exp"},
	}
	for _, k := range Kernels() {
		prog := source.MustParse(k.Source)
		mve := core.DefaultOptions()
		arr := core.DefaultOptions()
		arr.Expansion = core.ExpandScalar
		outM, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: d, Compiler: pipeline.WeakO3, SLMS: mve,
		}, k.Setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		outA, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: d, Compiler: pipeline.WeakO3, SLMS: arr,
		}, k.Setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		if !outM.Applied && !outA.Applied {
			f.Rows = append(f.Rows, Row{Kernel: k.Name, Value: 1, Value2: 1, Note: reasonOf(outM)})
			continue
		}
		f.Rows = append(f.Rows, Row{Kernel: k.Name, Value: outM.Speedup, Value2: outA.Speedup, Applied: true})
	}
	f.Notes = append(f.Notes,
		"MVE keeps variants in registers (paper's default); scalar expansion trades register pressure for memory traffic")
	return f, nil
}

// AblationTags measures what the strong compiler's affine memory
// disambiguation is worth: IMS with the front end's dependence tags vs
// IMS forced to treat same-array accesses as conflicting.
func AblationTags() (*Figure, error) {
	d := machine.IA64Like()
	withTags := pipeline.StrongO3
	noTags := pipeline.StrongO3
	noTags.Name = "strong, no disambiguation"
	noTags.Tags = false
	f := &Figure{
		ID:     "Ablation A3",
		Title:  "memory disambiguation in the strong compiler (ia64, no SLMS)",
		Metric: "cycles without tags / cycles with tags (>1 = tags help)",
		Series: []string{"ratio"},
	}
	for _, k := range Kernels() {
		prog := source.MustParse(k.Source)
		env1 := newSeededEnv(k)
		m1, _, err := pipeline.Run(prog, d, withTags, env1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		env2 := newSeededEnv(k)
		m2, _, err := pipeline.Run(prog, d, noTags, env2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		f.Rows = append(f.Rows, Row{Kernel: k.Name,
			Value: float64(m2.Cycles) / float64(m1.Cycles), Applied: true})
	}
	return f, nil
}

// AblationGuard measures the cost of the short-trip guard + fallback on
// long-trip loops (where the guard is pure overhead) by comparing the
// guarded SLMS output against NoGuard output.
func AblationGuard() (*Figure, error) {
	d := machine.IA64Like()
	f := &Figure{
		ID:     "Ablation A4",
		Title:  "short-trip guard overhead (weak compiler, ia64)",
		Metric: "cycles(guarded) / cycles(unguarded); ~1.0 = the guard is free on long trips",
		Series: []string{"ratio"},
	}
	for _, k := range Kernels() {
		prog := source.MustParse(k.Source)
		guarded := core.DefaultOptions()
		bare := core.DefaultOptions()
		bare.NoGuard = true
		outG, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: d, Compiler: pipeline.WeakO3, SLMS: guarded,
		}, k.Setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		if !outG.Applied {
			f.Rows = append(f.Rows, Row{Kernel: k.Name, Value: 1, Note: reasonOf(outG)})
			continue
		}
		outB, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: d, Compiler: pipeline.WeakO3, SLMS: bare,
		}, k.Setup)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		f.Rows = append(f.Rows, Row{Kernel: k.Name,
			Value:   float64(outG.SLMS.Cycles) / float64(outB.SLMS.Cycles),
			Applied: true})
	}
	return f, nil
}

// AblationWindow sweeps the weak compiler's scheduling window and
// reports the SLMS geometric-mean speedup at each width — how the value
// of SLMS depends on the final compiler's scheduling quality.
func AblationWindow() (*Figure, error) {
	d := machine.IA64Like()
	f := &Figure{
		ID:     "Ablation A5",
		Title:  "weak-compiler scheduling window vs SLMS value (ia64)",
		Metric: "geometric-mean SLMS speedup over Livermore+Linpack at each window",
		Series: []string{"geomean"},
	}
	ks := append(Suite("livermore"), Suite("linpack")...)
	for _, w := range []int{4, 8, 16, 0} {
		cc := pipeline.WeakO3
		cc.Window = w
		prod, n := 1.0, 0
		for _, k := range ks {
			prog := source.MustParse(k.Source)
			out, err := pipeline.RunExperiment(prog, pipeline.Experiment{
				Machine: d, Compiler: cc, SLMS: core.DefaultOptions(),
			}, k.Setup)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", k.Name, err)
			}
			if out.Applied && out.Speedup > 0 {
				prod *= out.Speedup
				n++
			}
		}
		name := fmt.Sprintf("window=%d", w)
		if w == 0 {
			name = "window=∞"
		}
		f.Rows = append(f.Rows, Row{Kernel: name, Value: math.Pow(prod, 1/float64(n)), Applied: true})
	}
	return f, nil
}

// AllAblations runs every ablation.
func AllAblations() ([]*Figure, error) {
	gens := []func() (*Figure, error){
		AblationFilter, AblationExpansion, AblationTags, AblationGuard, AblationWindow,
	}
	var out []*Figure
	for _, g := range gens {
		f, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
