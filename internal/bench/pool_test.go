package bench

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// A panicking worker must not crash the harness: the panic surfaces as
// that item's error, named after the kernel, and every other item still
// runs to completion.
func TestParallelMapPanicBecomesError(t *testing.T) {
	items := []Kernel{{Name: "matmul"}, {Name: "boom"}, {Name: "fir"}}
	var ran atomic.Int32
	out, err := parallelMap(items, func(k Kernel) (string, error) {
		ran.Add(1)
		if k.Name == "boom" {
			panic("index out of range")
		}
		return k.Name, nil
	})
	if err == nil {
		t.Fatal("want an error from the panicking worker, got nil")
	}
	if out != nil {
		t.Errorf("want nil results on error, got %v", out)
	}
	if !strings.Contains(err.Error(), "kernel boom") {
		t.Errorf("error %q does not name the panicking kernel", err)
	}
	if !strings.Contains(err.Error(), "index out of range") {
		t.Errorf("error %q does not carry the panic value", err)
	}
	if got := ran.Load(); got != int32(len(items)) {
		t.Errorf("%d of %d items ran; a panic must not stop the others", got, len(items))
	}
}

// Panics and ordinary errors share the deterministic first-in-input-
// order error selection.
func TestParallelMapPanicOrdering(t *testing.T) {
	items := []*Kernel{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	_, err := parallelMap(items, func(k *Kernel) (int, error) {
		switch k.Name {
		case "a":
			return 0, nil
		case "b":
			panic("worker bug")
		default:
			return 0, errors.New("plain failure")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "kernel b") {
		t.Fatalf("want the earliest failure (panic on kernel b) to win, got %v", err)
	}
}

// Non-kernel work items are still identified in panic reports.
func TestParallelMapPanicNamesPlainItems(t *testing.T) {
	_, err := parallelMap([]int{1, 2}, func(n int) (int, error) {
		if n == 2 {
			panic("bad item")
		}
		return n, nil
	})
	if err == nil || !strings.Contains(err.Error(), "on 2") {
		t.Fatalf("want panic report naming item 2, got %v", err)
	}
}
