package compare

import (
	"math"
	"strings"
	"testing"

	"slms/internal/bench"
)

func side(wall float64, kernels ...bench.KernelStat) *bench.RunStats {
	return &bench.RunStats{
		TotalWallSeconds: wall,
		Kernels:          kernels,
		Phases: []bench.PhaseStat{
			{Phase: "sim", Count: 10, Seconds: wall * 0.6},
			{Phase: "compile", Count: 10, Seconds: wall * 0.3},
		},
	}
}

func kernel(name string, base, slms int64, secs float64) bench.KernelStat {
	return bench.KernelStat{
		Kernel: name, Seconds: secs,
		Phases:     map[string]float64{"sim": secs * 0.7, "compile": secs * 0.3},
		BaseCycles: base, SLMSCycles: slms,
	}
}

// A synthetic +10% cycle regression on one kernel must trip the gate;
// a clean pair must not.
func TestCompareDetectsSyntheticRegression(t *testing.T) {
	old := side(2.0,
		kernel("matmul", 1000, 600, 0.5),
		kernel("fir", 2000, 900, 0.4))
	good := side(2.1,
		kernel("matmul", 1000, 600, 0.5),
		kernel("fir", 2000, 900, 0.4))
	bad := side(2.1,
		kernel("matmul", 1000, 600, 0.5),
		kernel("fir", 2000, 990, 0.4)) // slms leg +10%

	rep, err := Compare([]*bench.RunStats{old}, []*bench.RunStats{good}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean comparison flagged regressions: %v", rep.Regressions)
	}

	rep, err = Compare([]*bench.RunStats{old}, []*bench.RunStats{bad}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("injected +10% slms-cycle regression not detected")
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "fir") {
		t.Fatalf("regressions = %v, want exactly the fir kernel", rep.Regressions)
	}
	var fir *KernelDelta
	for i := range rep.Kernels {
		if rep.Kernels[i].Kernel == "fir" {
			fir = &rep.Kernels[i]
		}
	}
	if fir == nil || !fir.Gated {
		t.Fatal("fir kernel missing or ungated in report")
	}
	if math.Abs(fir.CycleDelta-0.10) > 1e-9 {
		t.Fatalf("fir cycle delta = %v, want 0.10", fir.CycleDelta)
	}
	if !strings.Contains(rep.Table(), "REGRESSIONS") {
		t.Fatal("table does not surface the regression block")
	}
}

// A custom threshold above the injected delta must pass the gate, and a
// kernel without cycle data on either side must stay ungated rather
// than failing spuriously.
func TestCompareThresholdAndUngated(t *testing.T) {
	old := side(1.0, kernel("k", 1000, 500, 0.2))
	new := side(1.0, kernel("k", 1080, 500, 0.2)) // base +8%

	rep, err := Compare([]*bench.RunStats{old}, []*bench.RunStats{new},
		Options{CycleThreshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("+8%% under a 10%% threshold flagged: %v", rep.Regressions)
	}

	// Old side predates the cycle fields: no gate, no failure.
	legacy := side(1.0, bench.KernelStat{Kernel: "k", Seconds: 0.2,
		Phases: map[string]float64{"sim": 0.2}})
	rep, err = Compare([]*bench.RunStats{legacy}, []*bench.RunStats{new}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || rep.Kernels[0].Gated {
		t.Fatalf("legacy comparison should be ungated, got %+v", rep.Kernels[0])
	}
}

// Repeat samples per side produce confidence intervals, and clearly
// separated sides are marked significant.
func TestCompareConfidenceIntervals(t *testing.T) {
	olds := []*bench.RunStats{
		side(1.00, kernel("k", 100, 50, 0.50)),
		side(1.02, kernel("k", 100, 50, 0.51)),
		side(0.98, kernel("k", 100, 50, 0.49)),
	}
	news := []*bench.RunStats{
		side(2.00, kernel("k", 100, 50, 1.00)),
		side(2.02, kernel("k", 100, 50, 1.01)),
		side(1.98, kernel("k", 100, 50, 0.99)),
	}
	rep, err := Compare(olds, news, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall.Old.N != 3 || rep.Wall.New.N != 3 {
		t.Fatalf("wall sample counts = %d/%d, want 3/3", rep.Wall.Old.N, rep.Wall.New.N)
	}
	if rep.Wall.Old.CI <= 0 || rep.Wall.New.CI <= 0 {
		t.Fatalf("expected nonzero CIs, got %v / %v", rep.Wall.Old, rep.Wall.New)
	}
	if !rep.Wall.Significant {
		t.Fatalf("2x wall-time change with tight CIs not significant: %+v", rep.Wall)
	}
	if math.Abs(rep.Wall.Delta-1.0) > 0.05 {
		t.Fatalf("wall delta = %v, want ~1.0", rep.Wall.Delta)
	}
}

func TestStatBasics(t *testing.T) {
	if s := stat(nil); s.N != 0 || s.String() != "-" {
		t.Fatalf("empty stat = %+v (%q)", s, s.String())
	}
	if s := stat([]float64{3}); s.Mean != 3 || s.CI != 0 {
		t.Fatalf("single-sample stat = %+v", s)
	}
	s := stat([]float64{1, 2, 3})
	if s.Mean != 2 {
		t.Fatalf("mean = %v, want 2", s.Mean)
	}
	// sd = 1, n = 3, t(2) = 4.303 → CI = 4.303/sqrt(3)
	want := 4.303 / math.Sqrt(3)
	if math.Abs(s.CI-want) > 1e-9 {
		t.Fatalf("CI = %v, want %v", s.CI, want)
	}
}

// TestCompareGatesPrecision: unknown-edge growth against the baseline
// census is a regression; equal or shrinking counts pass, and sides
// without a census are not gated.
func TestCompareGatesPrecision(t *testing.T) {
	withP := func(unknown, enabled int) *bench.RunStats {
		s := side(1.0, kernel("k", 100, 80, 0.1))
		s.Precision = &bench.PrecisionStat{UnknownExact: unknown, NewlyPipelined: enabled}
		return s
	}
	rep, err := Compare([]*bench.RunStats{withP(0, 3)}, []*bench.RunStats{withP(2, 3)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || !strings.Contains(strings.Join(rep.Regressions, "\n"), "unknown edges 0 -> 2") {
		t.Errorf("unknown-edge growth not gated: %v", rep.Regressions)
	}

	rep, err = Compare([]*bench.RunStats{withP(2, 3)}, []*bench.RunStats{withP(0, 3)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("improvement flagged as regression: %v", rep.Regressions)
	}
	if rep.OldPrecision == nil || rep.NewPrecision == nil {
		t.Error("report lost the precision censuses")
	}

	rep, err = Compare([]*bench.RunStats{withP(0, 3)}, []*bench.RunStats{withP(0, 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("lost solver-enabled loops not gated")
	}

	// A baseline predating the census gates nothing.
	rep, err = Compare([]*bench.RunStats{side(1.0)}, []*bench.RunStats{withP(5, 0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("census-less baseline must not gate: %v", rep.Regressions)
	}
}

// TestCompareGatesOptimality: a loop whose heuristic II was proven
// minimal in the baseline must stay proven minimal at an II no larger;
// verdict flips and minimal-II growth are regressions, improvements and
// census-less sides are not.
func TestCompareGatesOptimality(t *testing.T) {
	withO := func(rows ...bench.OptgapRow) *bench.RunStats {
		s := side(1.0, kernel("k", 100, 80, 0.1))
		st := &bench.OptgapStat{Loops: len(rows), Rows: rows}
		s.Optimality = st
		return s
	}
	opt := func(ii int) bench.OptgapRow {
		return bench.OptgapRow{Kernel: "dot", Loop: 1, Verdict: "proven-optimal", HeurII: ii, ExactII: ii}
	}

	rep, err := Compare([]*bench.RunStats{withO(opt(3))}, []*bench.RunStats{withO(opt(3))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("unchanged proven-optimal loop flagged: %v", rep.Regressions)
	}
	if rep.OldOptimality == nil || rep.NewOptimality == nil {
		t.Error("report lost the optimality censuses")
	}

	// Verdict flip: proven-optimal -> budget-exhausted.
	flip := bench.OptgapRow{Kernel: "dot", Loop: 1, Verdict: "budget-exhausted", HeurII: 3}
	rep, err = Compare([]*bench.RunStats{withO(opt(3))}, []*bench.RunStats{withO(flip)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || !strings.Contains(strings.Join(rep.Regressions, "\n"), "was proven optimal") {
		t.Errorf("verdict flip not gated: %v", rep.Regressions)
	}

	// Proven-minimal II grew 3 -> 4.
	rep, err = Compare([]*bench.RunStats{withO(opt(3))}, []*bench.RunStats{withO(opt(4))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || !strings.Contains(strings.Join(rep.Regressions, "\n"), "grew 3 -> 4") {
		t.Errorf("minimal-II growth not gated: %v", rep.Regressions)
	}

	// Improvement (4 -> 3) and a dropped loop pass.
	rep, err = Compare([]*bench.RunStats{withO(opt(4))}, []*bench.RunStats{withO(opt(3))}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("improvement flagged as regression: %v", rep.Regressions)
	}
	rep, err = Compare([]*bench.RunStats{withO(opt(3))}, []*bench.RunStats{withO()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("dropped loop must not gate: %v", rep.Regressions)
	}

	// A baseline predating the census gates nothing.
	rep, err = Compare([]*bench.RunStats{side(1.0)}, []*bench.RunStats{withO(flip)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("census-less baseline must not gate: %v", rep.Regressions)
	}
}
