// Package compare is the benchstat-style analyzer over BENCH_*.json
// harness trajectories: it diffs two sets of RunStats per kernel and
// per phase, with confidence intervals when either side carries repeat
// samples, and gates on simulated-cycle regressions. Cycles are
// deterministic (pure simulation), so the regression gate needs no
// statistics: any relative growth beyond the threshold fails, which
// makes the gate reproducible on any machine against a committed
// baseline. Wall-clock columns are advisory and interval-qualified.
package compare

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"slms/internal/bench"
	"slms/internal/sched"
)

// Options configures a comparison.
type Options struct {
	// CycleThreshold is the relative simulated-cycle growth (per kernel,
	// base or SLMS leg) that counts as a regression. 0 means the
	// default, 5%.
	CycleThreshold float64
}

// DefaultCycleThreshold is the regression gate's default: fail on >5%
// cycle growth.
const DefaultCycleThreshold = 0.05

// Load reads one BENCH_*.json file. A two-leg record loads as its
// parallel leg (the primary trajectory; cycle totals are deterministic
// and identical across legs).
func Load(path string) (*bench.RunStats, error) {
	rs, _, err := LoadAny(path)
	return rs, err
}

// LoadAny reads a BENCH_*.json file in either format: a legacy single
// RunStats (legs nil) or a slms-bench-legs/v1 two-leg record (the
// RunStats returned is the parallel leg).
func LoadAny(path string) (*bench.RunStats, *bench.LegsStats, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var legs bench.LegsStats
	if err := json.Unmarshal(blob, &legs); err == nil &&
		legs.Serial != nil && legs.Parallel != nil {
		return legs.Parallel, &legs, nil
	}
	var rs bench.RunStats
	if err := json.Unmarshal(blob, &rs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rs, nil, nil
}

// Stat is a sampled quantity: mean over N samples plus the half-width
// of its 95% confidence interval (0 when N < 2).
type Stat struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	CI   float64 `json:"ci"` // 95% half-width
}

func (s Stat) String() string {
	if s.N == 0 {
		return "-"
	}
	if s.N < 2 {
		return fmt.Sprintf("%.4gs", s.Mean)
	}
	return fmt.Sprintf("%.4gs±%.2g", s.Mean, s.CI)
}

// PhaseDelta compares one phase's wall time between the two sides.
type PhaseDelta struct {
	Phase string `json:"phase"`
	Old   Stat   `json:"old"`
	New   Stat   `json:"new"`
	// Delta is the relative mean change; Significant is true when the
	// confidence intervals do not overlap (meaningless for N < 2).
	Delta       float64 `json:"delta"`
	Significant bool    `json:"significant"`
}

// KernelDelta compares one kernel between the two sides.
type KernelDelta struct {
	Kernel string `json:"kernel"`
	// Deterministic cycle totals (0 when a side predates the fields).
	OldBaseCycles int64 `json:"old_base_cycles"`
	NewBaseCycles int64 `json:"new_base_cycles"`
	OldSLMSCycles int64 `json:"old_slms_cycles"`
	NewSLMSCycles int64 `json:"new_slms_cycles"`
	// CycleDelta is the worst relative growth across the two legs.
	CycleDelta float64 `json:"cycle_delta"`
	// Gated is false when either side lacks cycle data.
	Gated bool `json:"gated"`

	Seconds PhaseDelta   `json:"seconds"` // total per-kernel wall time
	Phases  []PhaseDelta `json:"phases,omitempty"`
}

// Report is the outcome of a comparison.
type Report struct {
	Threshold   float64       `json:"threshold"`
	Kernels     []KernelDelta `json:"kernels"`
	Suite       []PhaseDelta  `json:"suite_phases,omitempty"`
	Wall        PhaseDelta    `json:"wall"`
	Regressions []string      `json:"regressions,omitempty"`
	// Precision census of each side, when recorded (the unknown-edge
	// count is gated: it must not grow against the baseline).
	OldPrecision *bench.PrecisionStat `json:"old_precision,omitempty"`
	NewPrecision *bench.PrecisionStat `json:"new_precision,omitempty"`
	// Optimality census of each side, when recorded (per loop: a
	// previously proven-optimal verdict must not regress, and the proven
	// minimal II must not grow).
	OldOptimality *bench.OptgapStat `json:"old_optimality,omitempty"`
	NewOptimality *bench.OptgapStat `json:"new_optimality,omitempty"`
}

// Failed reports whether any kernel regressed beyond the threshold.
func (r *Report) Failed() bool { return len(r.Regressions) > 0 }

// Compare diffs two sides, each one or more RunStats samples of the
// same suite (multiple samples tighten the wall-time intervals; cycle
// totals must agree across a side's samples, being deterministic).
func Compare(old, new []*bench.RunStats, opts Options) (*Report, error) {
	if len(old) == 0 || len(new) == 0 {
		return nil, fmt.Errorf("compare: need at least one sample per side")
	}
	threshold := opts.CycleThreshold
	if threshold == 0 {
		threshold = DefaultCycleThreshold
	}
	rep := &Report{Threshold: threshold}

	rep.Wall = phaseDelta("wall", walls(old), walls(new))
	rep.Suite = suitePhases(old, new)

	names := map[string]bool{}
	oldK, newK := kernelMaps(old), kernelMaps(new)
	for n := range oldK {
		names[n] = true
	}
	for n := range newK {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		olds, news := oldK[name], newK[name]
		kd := KernelDelta{Kernel: name}
		if len(olds) > 0 {
			kd.OldBaseCycles, kd.OldSLMSCycles = olds[0].BaseCycles, olds[0].SLMSCycles
		}
		if len(news) > 0 {
			kd.NewBaseCycles, kd.NewSLMSCycles = news[0].BaseCycles, news[0].SLMSCycles
		}
		kd.Gated = kd.OldBaseCycles > 0 && kd.NewBaseCycles > 0
		if kd.Gated {
			kd.CycleDelta = max(
				rel(kd.OldBaseCycles, kd.NewBaseCycles),
				rel(kd.OldSLMSCycles, kd.NewSLMSCycles))
			if kd.CycleDelta > threshold {
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"%s: cycles regressed %.1f%% (base %d→%d, slms %d→%d)",
					name, 100*kd.CycleDelta,
					kd.OldBaseCycles, kd.NewBaseCycles,
					kd.OldSLMSCycles, kd.NewSLMSCycles))
			}
		}
		kd.Seconds = phaseDelta("seconds", kernelSeconds(olds), kernelSeconds(news))
		kd.Phases = kernelPhases(olds, news)
		rep.Kernels = append(rep.Kernels, kd)
	}

	// Dependence-precision gate: the census is deterministic, so any
	// growth in unknown edges against the baseline is an analysis
	// regression (a sharpening the solver lost). Gated only when both
	// sides carry the census (older baselines predate it).
	if op, np := precisionOf(old), precisionOf(new); op != nil && np != nil {
		rep.OldPrecision, rep.NewPrecision = op, np
		if np.UnknownExact > op.UnknownExact {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"dependence precision regressed: unknown edges %d -> %d across the corpus",
				op.UnknownExact, np.UnknownExact))
		}
		if np.NewlyPipelined+np.LowerII < op.NewlyPipelined+op.LowerII {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"dependence precision regressed: solver-enabled loops %d -> %d (newly pipelined + lower II)",
				op.NewlyPipelined+op.LowerII, np.NewlyPipelined+np.LowerII))
		}
	}

	// Optimality gate: scheduling is deterministic, so a loop whose
	// heuristic II was proven minimal must stay proven minimal, at an II
	// no larger than the baseline's. Gated per loop, keyed by
	// kernel+loop; loops absent from either side are not gated.
	if oo, no := optimalityOf(old), optimalityOf(new); oo != nil && no != nil {
		rep.OldOptimality, rep.NewOptimality = oo, no
		newRows := map[string]bench.OptgapRow{}
		for _, r := range no.Rows {
			newRows[fmt.Sprintf("%s#%d", r.Kernel, r.Loop)] = r
		}
		for _, r := range oo.Rows {
			if r.Verdict != sched.VerdictOptimal {
				continue
			}
			key := fmt.Sprintf("%s#%d", r.Kernel, r.Loop)
			nr, ok := newRows[key]
			if !ok {
				continue
			}
			switch {
			case nr.Verdict != sched.VerdictOptimal:
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"optimality regressed: %s was proven optimal (II=%d), now %q (heur II=%d, exact II=%d)",
					key, r.ExactII, nr.Verdict, nr.HeurII, nr.ExactII))
			case nr.ExactII > r.ExactII:
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"optimality regressed: %s proven-minimal II grew %d -> %d",
					key, r.ExactII, nr.ExactII))
			}
		}
	}
	return rep, nil
}

// optimalityOf returns the first sample's optimality census (samples of
// one side agree; the census is deterministic).
func optimalityOf(side []*bench.RunStats) *bench.OptgapStat {
	for _, s := range side {
		if s.Optimality != nil {
			return s.Optimality
		}
	}
	return nil
}

// precisionOf returns the first sample's precision census (samples of
// one side agree; the census is deterministic).
func precisionOf(side []*bench.RunStats) *bench.PrecisionStat {
	for _, s := range side {
		if s.Precision != nil {
			return s.Precision
		}
	}
	return nil
}

func rel(old, new int64) float64 {
	if old <= 0 {
		return 0
	}
	return float64(new-old) / float64(old)
}

func walls(side []*bench.RunStats) []float64 {
	var out []float64
	for _, rs := range side {
		out = append(out, rs.TotalWallSeconds)
	}
	return out
}

func kernelMaps(side []*bench.RunStats) map[string][]bench.KernelStat {
	m := map[string][]bench.KernelStat{}
	for _, rs := range side {
		for _, ks := range rs.Kernels {
			m[ks.Kernel] = append(m[ks.Kernel], ks)
		}
	}
	return m
}

func kernelSeconds(ks []bench.KernelStat) []float64 {
	var out []float64
	for _, k := range ks {
		out = append(out, k.Seconds)
	}
	return out
}

func kernelPhases(olds, news []bench.KernelStat) []PhaseDelta {
	names := map[string]bool{}
	collect := func(ks []bench.KernelStat, phase string) []float64 {
		var out []float64
		for _, k := range ks {
			if v, ok := k.Phases[phase]; ok {
				out = append(out, v)
			}
		}
		return out
	}
	for _, k := range olds {
		for ph := range k.Phases {
			names[ph] = true
		}
	}
	for _, k := range news {
		for ph := range k.Phases {
			names[ph] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for ph := range names {
		sorted = append(sorted, ph)
	}
	sort.Strings(sorted)
	var out []PhaseDelta
	for _, ph := range sorted {
		out = append(out, phaseDelta(ph, collect(olds, ph), collect(news, ph)))
	}
	return out
}

func suitePhases(old, new []*bench.RunStats) []PhaseDelta {
	collect := func(side []*bench.RunStats) map[string][]float64 {
		m := map[string][]float64{}
		for _, rs := range side {
			for _, ps := range rs.Phases {
				m[ps.Phase] = append(m[ps.Phase], ps.Seconds)
			}
		}
		return m
	}
	om, nm := collect(old), collect(new)
	names := map[string]bool{}
	for n := range om {
		names[n] = true
	}
	for n := range nm {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	var out []PhaseDelta
	for _, n := range sorted {
		out = append(out, phaseDelta(n, om[n], nm[n]))
	}
	return out
}

func phaseDelta(name string, old, new []float64) PhaseDelta {
	pd := PhaseDelta{Phase: name, Old: stat(old), New: stat(new)}
	if pd.Old.Mean > 0 {
		pd.Delta = (pd.New.Mean - pd.Old.Mean) / pd.Old.Mean
	}
	if pd.Old.N >= 2 && pd.New.N >= 2 {
		lo1, hi1 := pd.Old.Mean-pd.Old.CI, pd.Old.Mean+pd.Old.CI
		lo2, hi2 := pd.New.Mean-pd.New.CI, pd.New.Mean+pd.New.CI
		pd.Significant = hi1 < lo2 || hi2 < lo1
	}
	return pd
}

// Table renders the report as an aligned text table: per-kernel cycle
// and wall-time deltas, suite phase totals, and the regression list.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %8s   %-16s %-16s %8s\n",
		"kernel", "old cycles", "new cycles", "delta", "old wall", "new wall", "delta")
	fmt.Fprintln(&b, strings.Repeat("-", 96))
	for _, kd := range r.Kernels {
		cyc := "n/a"
		oldC, newC := kd.OldBaseCycles+kd.OldSLMSCycles, kd.NewBaseCycles+kd.NewSLMSCycles
		if kd.Gated {
			cyc = fmt.Sprintf("%+.1f%%", 100*kd.CycleDelta)
		}
		fmt.Fprintf(&b, "%-14s %12d %12d %8s   %-16s %-16s %+7.1f%%\n",
			kd.Kernel, oldC, newC, cyc,
			kd.Seconds.Old, kd.Seconds.New, 100*kd.Seconds.Delta)
	}
	if len(r.Suite) > 0 {
		fmt.Fprintf(&b, "\n%-14s %-16s %-16s %8s\n", "phase", "old", "new", "delta")
		fmt.Fprintln(&b, strings.Repeat("-", 60))
		for _, pd := range r.Suite {
			sig := ""
			if pd.Significant {
				sig = "  (significant)"
			}
			fmt.Fprintf(&b, "%-14s %-16s %-16s %+7.1f%%%s\n",
				pd.Phase, pd.Old, pd.New, 100*pd.Delta, sig)
		}
	}
	fmt.Fprintf(&b, "\nwall: %s -> %s (%+.1f%%)\n", r.Wall.Old, r.Wall.New, 100*r.Wall.Delta)
	if len(r.Regressions) > 0 {
		fmt.Fprintf(&b, "\nREGRESSIONS (threshold %.0f%%):\n", 100*r.Threshold)
		for _, reg := range r.Regressions {
			fmt.Fprintf(&b, "  %s\n", reg)
		}
	} else {
		fmt.Fprintf(&b, "no cycle regressions (threshold %.0f%%)\n", 100*r.Threshold)
	}
	return b.String()
}
