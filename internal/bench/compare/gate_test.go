package compare

import (
	"os"
	"path/filepath"
	"testing"

	"slms/internal/bench"
)

// gateBaseline is the committed baseline the CI gates diff against:
// SLMS_GATE_BASELINE when set, BENCH_7.json (the precision record)
// otherwise.
func gateBaseline() string {
	if p := os.Getenv("SLMS_GATE_BASELINE"); p != "" {
		return p
	}
	return filepath.Join("..", "..", "..", "BENCH_7.json")
}

// TestRegressionGateAgainstBaseline is the CI regression gate: it
// re-runs the full figure suite and compares its per-kernel simulated
// cycles against the committed baseline. Cycles are deterministic, so
// any delta beyond the 5% threshold is a real scheduling or simulator
// change — either a regression to fix or an intentional change that
// warrants re-recording the baseline (`slmsbench -legs -json
// BENCH_7.json`). Env-gated because it re-runs the whole suite; CI sets
// SLMS_REGRESSION_GATE=1.
func TestRegressionGateAgainstBaseline(t *testing.T) {
	if os.Getenv("SLMS_REGRESSION_GATE") == "" {
		t.Skip("set SLMS_REGRESSION_GATE=1 to run the regression gate")
	}
	baseline, err := Load(gateBaseline())
	if err != nil {
		t.Fatalf("load committed baseline: %v", err)
	}
	_, current, err := bench.AllFiguresTimed()
	if err != nil {
		t.Fatalf("figure suite: %v", err)
	}
	rep, err := Compare([]*bench.RunStats{baseline}, []*bench.RunStats{current}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gated := 0
	for _, kd := range rep.Kernels {
		if kd.Gated {
			gated++
		}
	}
	if gated == 0 {
		t.Fatal("no kernel had cycle data on both sides; the gate checked nothing")
	}
	t.Logf("gated %d kernels against the baseline\n%s", gated, rep.Table())
	for _, reg := range rep.Regressions {
		t.Errorf("regression: %s", reg)
	}
}

// TestThroughputGateAgainstBaseline is the CI throughput gate: it
// re-runs the figure suite in both configurations (serial and parallel
// legs, cold caches each) and checks (a) the parallel leg's
// cycles/second has not collapsed against the committed baseline and
// (b) parallelism still buys the expected multiplier over this host's
// own serial leg (skipped on single-proc hosts, where there is nothing
// to scale onto). Env-gated: CI sets SLMS_THROUGHPUT_GATE=1.
func TestThroughputGateAgainstBaseline(t *testing.T) {
	if os.Getenv("SLMS_THROUGHPUT_GATE") == "" {
		t.Skip("set SLMS_THROUGHPUT_GATE=1 to run the throughput gate")
	}
	_, baseLegs, err := LoadAny(gateBaseline())
	if err != nil {
		t.Fatalf("load committed baseline: %v", err)
	}
	_, legs, err := bench.AllFiguresLegs()
	if err != nil {
		t.Fatalf("two-leg figure suite: %v", err)
	}
	rep, err := CompareThroughput(baseLegs, legs, ThroughputOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("throughput gate\n%s", rep.Table())
	for _, reg := range rep.Regressions {
		t.Errorf("throughput regression: %s", reg)
	}
}
