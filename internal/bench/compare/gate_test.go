package compare

import (
	"os"
	"path/filepath"
	"testing"

	"slms/internal/bench"
)

// TestRegressionGateAgainstBaseline is the CI regression gate: it
// re-runs the full figure suite and compares its per-kernel simulated
// cycles against the committed BENCH_4.json baseline. Cycles are
// deterministic, so any delta beyond the 5% threshold is a real
// scheduling or simulator change — either a regression to fix or an
// intentional change that warrants re-recording the baseline
// (`slmsbench -json BENCH_4.json`). Env-gated because it re-runs the
// whole suite; CI sets SLMS_REGRESSION_GATE=1.
func TestRegressionGateAgainstBaseline(t *testing.T) {
	if os.Getenv("SLMS_REGRESSION_GATE") == "" {
		t.Skip("set SLMS_REGRESSION_GATE=1 to run the regression gate")
	}
	baseline, err := Load(filepath.Join("..", "..", "..", "BENCH_4.json"))
	if err != nil {
		t.Fatalf("load committed baseline: %v", err)
	}
	_, current, err := bench.AllFiguresTimed()
	if err != nil {
		t.Fatalf("figure suite: %v", err)
	}
	rep, err := Compare([]*bench.RunStats{baseline}, []*bench.RunStats{current}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gated := 0
	for _, kd := range rep.Kernels {
		if kd.Gated {
			gated++
		}
	}
	if gated == 0 {
		t.Fatal("no kernel had cycle data on both sides; the gate checked nothing")
	}
	t.Logf("gated %d kernels against the baseline\n%s", gated, rep.Table())
	for _, reg := range rep.Regressions {
		t.Errorf("regression: %s", reg)
	}
}
