package compare

import (
	"fmt"
	"strings"

	"slms/internal/bench"
)

// The throughput gate over two-leg BENCH records. Cycle counts are
// deterministic and gated exactly by Compare; cycles/second is wall
// clock, so this gate uses a wide threshold (throughput halving is a
// real regression, 10% is runner noise) and judges parallel scaling
// against the host's own serial leg — a self-relative measure that is
// stable across machines of different absolute speed.

// ThroughputOptions configures CompareThroughput.
type ThroughputOptions struct {
	// Threshold is the relative cycles/second drop (parallel leg, new vs
	// old) that counts as a regression. 0 means the default, 30%.
	Threshold float64
	// MinScaling is the parallel-over-serial throughput multiplier
	// demanded of the new record on hosts with ≥ 4 procs. 0 means the
	// default, 2.0. On 2–3 procs the demand is halved; on < 2 procs the
	// scaling check is skipped (there is nothing to scale onto).
	MinScaling float64
}

// DefaultThroughputThreshold is the cycles/second regression threshold.
const DefaultThroughputThreshold = 0.30

// DefaultMinScaling is the parallel-over-serial multiplier demanded on
// multi-core hosts.
const DefaultMinScaling = 2.0

// ThroughputReport is the outcome of a throughput comparison.
type ThroughputReport struct {
	OldCyclesPerSec float64  `json:"old_cycles_per_sec"`
	NewCyclesPerSec float64  `json:"new_cycles_per_sec"`
	Delta           float64  `json:"delta"` // relative change, new vs old
	OldScaling      float64  `json:"old_scaling"`
	NewScaling      float64  `json:"new_scaling"`
	GoMaxProcs      int      `json:"gomaxprocs"` // of the new record
	Skipped         []string `json:"skipped,omitempty"`
	Regressions     []string `json:"regressions,omitempty"`
}

// Failed reports whether the new record regressed.
func (r *ThroughputReport) Failed() bool { return len(r.Regressions) > 0 }

// CompareThroughput gates the new two-leg record's parallel throughput
// against the old one and its scaling against the host itself. old may
// be nil (a legacy single-RunStats baseline): the absolute comparison is
// skipped and only the self-relative scaling check runs.
func CompareThroughput(old, new *bench.LegsStats, opts ThroughputOptions) (*ThroughputReport, error) {
	if new == nil || new.Serial == nil || new.Parallel == nil {
		return nil, fmt.Errorf("compare: throughput gate needs a two-leg record (run slmsbench -legs)")
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThroughputThreshold
	}
	minScaling := opts.MinScaling
	if minScaling == 0 {
		minScaling = DefaultMinScaling
	}
	rep := &ThroughputReport{
		NewCyclesPerSec: new.Parallel.CyclesPerSecond,
		NewScaling:      new.Scaling,
		GoMaxProcs:      new.Parallel.GoMaxProcs,
	}

	if old != nil && old.Parallel != nil {
		rep.OldCyclesPerSec = old.Parallel.CyclesPerSecond
		rep.OldScaling = old.Scaling
		if rep.OldCyclesPerSec > 0 {
			rep.Delta = (rep.NewCyclesPerSec - rep.OldCyclesPerSec) / rep.OldCyclesPerSec
			if rep.Delta < -threshold {
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"parallel throughput regressed %.0f%% (%.3g -> %.3g cycles/sec, threshold %.0f%%)",
					-100*rep.Delta, rep.OldCyclesPerSec, rep.NewCyclesPerSec, 100*threshold))
			}
		} else {
			rep.Skipped = append(rep.Skipped, "baseline has no cycles/second; absolute comparison skipped")
		}
	} else {
		rep.Skipped = append(rep.Skipped, "baseline is single-leg; absolute comparison skipped")
	}

	switch procs := rep.GoMaxProcs; {
	case procs < 2:
		rep.Skipped = append(rep.Skipped, fmt.Sprintf(
			"scaling check skipped on a %d-proc host", procs))
	default:
		want := minScaling
		if procs < 4 {
			want = minScaling / 2
		}
		if rep.NewScaling < want {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"parallel scaling %.2fx below the %.2fx floor on a %d-proc host",
				rep.NewScaling, want, procs))
		}
	}
	return rep, nil
}

// Table renders the throughput report as text.
func (r *ThroughputReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel throughput: %.4g -> %.4g cycles/sec (%+.1f%%)\n",
		r.OldCyclesPerSec, r.NewCyclesPerSec, 100*r.Delta)
	fmt.Fprintf(&b, "scaling (parallel/serial): %.2fx -> %.2fx on %d procs\n",
		r.OldScaling, r.NewScaling, r.GoMaxProcs)
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "skipped: %s\n", s)
	}
	if len(r.Regressions) > 0 {
		b.WriteString("THROUGHPUT REGRESSIONS:\n")
		for _, reg := range r.Regressions {
			fmt.Fprintf(&b, "  %s\n", reg)
		}
	} else {
		b.WriteString("no throughput regressions\n")
	}
	return b.String()
}
