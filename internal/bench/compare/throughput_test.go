package compare

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"slms/internal/bench"
)

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func legsFixture(serialCPS, parallelCPS float64, procs int) *bench.LegsStats {
	return &bench.LegsStats{
		Schema:   bench.LegsSchema,
		Serial:   &bench.RunStats{CyclesPerSecond: serialCPS, Workers: 1, GoMaxProcs: procs},
		Parallel: &bench.RunStats{CyclesPerSecond: parallelCPS, Workers: procs, GoMaxProcs: procs},
		Scaling:  parallelCPS / serialCPS,
	}
}

// TestLoadAnyDetectsBothFormats: a legacy single-RunStats file loads
// with nil legs; a two-leg record loads as its parallel leg plus the
// legs.
func TestLoadAnyDetectsBothFormats(t *testing.T) {
	dir := t.TempDir()

	legacy := filepath.Join(dir, "legacy.json")
	writeJSON(t, legacy, &bench.RunStats{SimulatedCycles: 123, CyclesPerSecond: 9.5})
	rs, legs, err := LoadAny(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if legs != nil {
		t.Errorf("legacy file decoded as a legs record")
	}
	if rs.SimulatedCycles != 123 {
		t.Errorf("legacy cycles = %d, want 123", rs.SimulatedCycles)
	}

	two := filepath.Join(dir, "legs.json")
	writeJSON(t, two, legsFixture(100, 350, 4))
	rs, legs, err = LoadAny(two)
	if err != nil {
		t.Fatal(err)
	}
	if legs == nil {
		t.Fatal("two-leg file decoded as legacy")
	}
	if rs != legs.Parallel {
		t.Error("LoadAny did not return the parallel leg as the gating RunStats")
	}
	if got, err := Load(two); err != nil || got.CyclesPerSecond != 350 {
		t.Errorf("Load(legs) = %+v, %v; want the parallel leg", got, err)
	}
}

// TestCompareThroughputGates exercises the regression and scaling rules.
func TestCompareThroughputGates(t *testing.T) {
	old := legsFixture(100, 350, 4)

	// Healthy: similar throughput, good scaling.
	rep, err := CompareThroughput(old, legsFixture(100, 330, 4), ThroughputOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("healthy record failed: %v", rep.Regressions)
	}

	// Collapsed throughput: beyond the 30% default threshold.
	rep, err = CompareThroughput(old, legsFixture(100, 200, 4), ThroughputOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("43% throughput drop passed the gate")
	}

	// Scaling below the 2x floor on a 4-proc host.
	rep, err = CompareThroughput(old, legsFixture(100, 150, 4), ThroughputOptions{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("1.5x scaling on 4 procs passed the 2x floor")
	}

	// Single-proc host: scaling check skipped, mild drop tolerated.
	rep, err = CompareThroughput(old, legsFixture(100, 101, 1), ThroughputOptions{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("single-proc record failed: %v", rep.Regressions)
	}
	if len(rep.Skipped) == 0 {
		t.Error("single-proc record did not report the skipped scaling check")
	}

	// Legacy baseline: absolute comparison skipped, scaling still gated.
	rep, err = CompareThroughput(nil, legsFixture(100, 120, 4), ThroughputOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("1.2x scaling on 4 procs passed with a legacy baseline")
	}
	if len(rep.Skipped) == 0 {
		t.Error("legacy baseline did not report the skipped absolute comparison")
	}

	// A one-leg record is a usage error.
	if _, err := CompareThroughput(old, &bench.LegsStats{Parallel: &bench.RunStats{}}, ThroughputOptions{}); err == nil {
		t.Error("one-leg record accepted")
	}
}
