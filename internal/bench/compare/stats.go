package compare

import "math"

// stat computes the sample mean and the half-width of its 95%
// confidence interval (Student's t on the standard error). With fewer
// than two samples the interval is zero — the table column then shows
// the bare value and no significance claim is made.
func stat(xs []float64) Stat {
	s := Stat{N: len(xs)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(s.N-1))
	s.CI = tValue(s.N-1) * sd / math.Sqrt(float64(s.N))
	return s
}

// t95 holds two-sided 95% critical values of Student's t for 1..30
// degrees of freedom; beyond that the normal approximation is used.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tValue(df int) float64 {
	if df <= 0 {
		return 0
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}
