package bench

import (
	"fmt"

	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/sem"
	"slms/internal/source"
	"slms/internal/xform"
)

// Extensions measures the §10 extensions quantitatively (the paper only
// demonstrates them by example): while-loop unrolling vs while-loop
// software pipelining on the shifted string copy, and the frequent-path
// transformation on a branchy loop. The paper's claim for the pipelined
// while-loop — "this outcome is better (in terms of extracted
// parallelism) than the unrolled version" — becomes a measured row.
func Extensions() (*Figure, error) {
	d := machine.IA64Like()
	f := &Figure{
		ID:     "Extensions (§10)",
		Title:  "while-loop and frequent-path extensions (strong compiler, ia64)",
		Metric: "speedup vs the untransformed loop (cycles)",
		Series: []string{"speedup"},
	}

	// ---- shifted string copy ----
	const whileSrc = `
		float a[600];
		int i = 0;
		while (a[i+2] > 0.0) {
			a[i] = a[i+2];
			i++;
		}
	`
	seedCopy := func(env *interp.Env) {
		data := make([]float64, 600)
		for i := 0; i < 500; i++ {
			data[i] = float64(500 - i)
		}
		env.SetFloatArray("a", data)
	}
	baseCycles, err := runCycles(source.MustParse(whileSrc), d, seedCopy)
	if err != nil {
		return nil, err
	}

	unrolled := source.MustParse(whileSrc)
	info, err := sem.Check(unrolled)
	if err != nil {
		return nil, err
	}
	u, err := xform.UnrollWhile(unrolled.Stmts[2].(*source.While), 2, info.Table, false)
	if err != nil {
		return nil, err
	}
	unrolled.Stmts[2] = u
	unrolledCycles, err := runCycles(unrolled, d, seedCopy)
	if err != nil {
		return nil, err
	}

	// The paper's §10 listing is the 2-unrolled loop, software pipelined:
	// compose the two transformations.
	piped := source.MustParse(whileSrc)
	info2, err := sem.Check(piped)
	if err != nil {
		return nil, err
	}
	u2, err := xform.UnrollWhile(piped.Stmts[2].(*source.While), 2, info2.Table, false)
	if err != nil {
		return nil, err
	}
	mainWhile := u2.(*source.Block).Stmts[0].(*source.While)
	pw, err := xform.PipelineWhile(mainWhile, info2.Table, false)
	if err != nil {
		return nil, err
	}
	u2.(*source.Block).Stmts[0] = pw
	piped.Stmts[2] = u2
	pipedCycles, err := runCycles(piped, d, seedCopy)
	if err != nil {
		return nil, err
	}

	f.Rows = append(f.Rows,
		Row{Kernel: "while-unroll", Value: ratio(baseCycles, unrolledCycles), Applied: true},
		Row{Kernel: "while-pipe", Value: ratio(baseCycles, pipedCycles), Applied: true},
	)
	if pipedCycles < unrolledCycles {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"pipelined while-loop beats the unrolled version (%d vs %d cycles), as §10 claims",
			pipedCycles, unrolledCycles))
	} else {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"pipelined %d vs unrolled %d cycles (paper expects the pipelined form to win)",
			pipedCycles, unrolledCycles))
	}

	// ---- frequent path ----
	const fpSrc = `
		float A[600]; float B[600]; float D[600];
		for (i = 1; i < 500; i++) {
			if (A[i] > 0.5) {
				B[i] = B[i] * 1.5 + 0.25;
			} else {
				B[i] = B[i] + A[i-1];
			}
			D[i] = D[i-1] * 0.5 + B[i];
		}
	`
	seedFP := func(env *interp.Env) {
		a := make([]float64, 600)
		b := make([]float64, 600)
		dd := make([]float64, 600)
		for i := range a {
			// ~94% of iterations take the frequent path.
			if i%16 == 0 {
				a[i] = 0.1
			} else {
				a[i] = 1.0
			}
			b[i] = 0.5 + 0.001*float64(i)
			dd[i] = 1.0
		}
		env.SetFloatArray("A", a)
		env.SetFloatArray("B", b)
		env.SetFloatArray("D", dd)
	}
	fpBase, err := runCycles(source.MustParse(fpSrc), d, seedFP)
	if err != nil {
		return nil, err
	}
	fp := source.MustParse(fpSrc)
	info3, err := sem.Check(fp)
	if err != nil {
		return nil, err
	}
	fpt, err := xform.FrequentPath(fp.Stmts[3].(*source.For), info3.Table, false)
	if err != nil {
		return nil, err
	}
	fp.Stmts[3] = fpt
	fpCycles, err := runCycles(fp, d, seedFP)
	if err != nil {
		return nil, err
	}
	f.Rows = append(f.Rows, Row{Kernel: "freq-path", Value: ratio(fpBase, fpCycles), Applied: true})
	return f, nil
}

func runCycles(p *source.Program, d *machine.Desc, seed func(*interp.Env)) (int64, error) {
	env := interp.NewEnv()
	if seed != nil {
		seed(env)
	}
	// The §10 kernels interleave loads and stores of one array; only a
	// compiler with memory disambiguation (the paper's ICC) can overlap
	// them, so the extensions are measured under the strong configuration.
	m, _, err := pipeline.Run(p, d, pipeline.StrongO3, env)
	if err != nil {
		return 0, err
	}
	return m.Cycles, nil
}

func ratio(base, now int64) float64 {
	if now == 0 {
		return 0
	}
	return float64(base) / float64(now)
}
