// Package bench contains the benchmark loops of the paper's evaluation —
// Livermore kernels, Linpack loops, NAS kernel loops and the Stone
// loops — rewritten in mini-C, together with the harness that reproduces
// every evaluation figure (14–22) as a text table.
//
// The originals are Fortran/C programs; what SLMS sees is only the loop
// body and its dependences, so each kernel here preserves the original's
// statement structure, array reference pattern and recurrence shape at
// reduced problem sizes (the simulator is execution-driven, so sizes are
// chosen for tractable run times). The Stone benchmark could not be
// recovered from public sources; its four loops are synthetic stand-ins
// covering the dependence shapes the paper's figures imply (see
// DESIGN.md). A total of 31 loops matches the paper's "out of 31 loops
// that were tested".
package bench

import (
	"sort"

	"slms/internal/interp"
)

// Kernel is one benchmark loop.
type Kernel struct {
	Name   string
	Suite  string // livermore | linpack | nas | stone
	Source string // mini-C text (arrays declared, data seeded externally)
	// Setup seeds the input arrays/scalars; called with a fresh
	// environment before every run so base and SLMS runs see identical
	// inputs.
	Setup func(*interp.Env)
	// FloatHeavy marks loops dominated by floating-point arithmetic
	// (used by the Figure 14 bad-case analysis).
	FloatHeavy bool
}

// rng is a small deterministic generator for seeding inputs.
type rng struct{ s uint64 }

func (r *rng) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / float64(1<<53)
}

// fill returns n pseudo-random values in [lo, hi).
func fill(seed uint64, n int, lo, hi float64) []float64 {
	r := &rng{s: seed*2862933555777941757 + 3037000493}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*r.next()
	}
	return out
}

func seedArrays(shapes map[string][]int, seed uint64) func(*interp.Env) {
	// Deterministic iteration order: sort names.
	names := make([]string, 0, len(shapes))
	for n := range shapes {
		names = append(names, n)
	}
	sort.Strings(names)
	return func(env *interp.Env) {
		s := seed
		for _, name := range names {
			dims := shapes[name]
			n := 1
			for _, d := range dims {
				n *= d
			}
			env.SetFloatArrayDims(name, dims, fill(s, n, 0.1, 2.0))
			s += 7
		}
	}
}

// Kernels returns all benchmark loops.
func Kernels() []Kernel {
	var ks []Kernel
	ks = append(ks, livermore()...)
	ks = append(ks, linpack()...)
	ks = append(ks, nas()...)
	ks = append(ks, stone()...)
	return ks
}

// Suite returns the kernels of one suite.
func Suite(name string) []Kernel {
	var out []Kernel
	for _, k := range Kernels() {
		if k.Suite == name {
			out = append(out, k)
		}
	}
	return out
}

// Lookup returns the kernel with the given name, or nil.
func Lookup(name string) *Kernel {
	for _, k := range Kernels() {
		if k.Name == name {
			kk := k
			return &kk
		}
	}
	return nil
}

func livermore() []Kernel {
	return []Kernel{
		{
			Name: "kernel1", Suite: "livermore", FloatHeavy: true,
			// Hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
			Source: `
				int n = 400;
				float x[440]; float y[440]; float z[440];
				float q = 0.5; float r = 0.2; float t = 0.1;
				for (k = 0; k < n; k++) {
					x[k] = q + y[k] * (r * z[k+10] + t * z[k+11]);
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {440}, "y": {440}, "z": {440}}, 1),
		},
		{
			Name: "kernel2", Suite: "livermore", FloatHeavy: true,
			// ICCG excerpt (simplified inner loop of the incomplete
			// Cholesky conjugate gradient).
			Source: `
				int n = 200;
				float x[420]; float v[420];
				for (k = 0; k < n; k++) {
					x[k] = x[k+32] - v[k] * x[k+33];
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {420}, "v": {420}}, 2),
		},
		{
			Name: "kernel3", Suite: "livermore", FloatHeavy: true,
			// Inner product: q += z[k]*x[k]
			Source: `
				int n = 400;
				float x[400]; float z[400];
				float q = 0.0;
				for (k = 0; k < n; k++) {
					q += z[k] * x[k];
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {400}, "z": {400}}, 3),
		},
		{
			Name: "kernel4", Suite: "livermore", FloatHeavy: true,
			// Banded linear equations (interior stripe).
			Source: `
				int n = 120;
				float x[500]; float y[500];
				float t = 0.25;
				for (k = 0; k < n; k++) {
					x[k+160] = x[k+160] - x[k] * y[k] - x[k+80] * t;
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {500}, "y": {500}}, 4),
		},
		{
			Name: "kernel5", Suite: "livermore", FloatHeavy: true,
			// Tri-diagonal elimination, below diagonal: first-order
			// recurrence.
			Source: `
				int n = 300;
				float x[310]; float y[310]; float z[310];
				for (i = 1; i < n; i++) {
					x[i] = z[i] * (y[i] - x[i-1]);
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {310}, "y": {310}, "z": {310}}, 5),
		},
		{
			Name: "kernel7", Suite: "livermore", FloatHeavy: true,
			// Equation of state fragment: long expression, no carried deps.
			Source: `
				int n = 300;
				float x[330]; float y[330]; float z[330]; float u[330];
				float q = 0.5; float r = 0.2; float t = 0.1;
				for (k = 0; k < n; k++) {
					x[k] = u[k] + r*(z[k] + r*y[k]) +
						t*(u[k+3] + r*(u[k+2] + r*u[k+1]) +
						t*(u[k+6] + q*(u[k+5] + q*u[k+4])));
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {330}, "y": {330}, "z": {330}, "u": {330}}, 7),
		},
		{
			Name: "kernel8", Suite: "livermore", FloatHeavy: true,
			// ADI integration fragment: the big multi-statement body the
			// paper analyzes (23 → 16 bundles under GCC).
			Source: `
				int n = 150;
				float u1[300]; float u2[300]; float u3[300];
				float du1[300]; float du2[300]; float du3[300];
				float sig = 2.0;
				for (ky = 1; ky < n; ky++) {
					du1[ky] = u1[ky+1] - u1[ky-1];
					du2[ky] = u2[ky+1] - u2[ky-1];
					du3[ky] = u3[ky+1] - u3[ky-1];
					u1[ky+101] = u1[ky] + sig*du1[ky] + sig*du2[ky] + sig*du3[ky];
					u2[ky+101] = u2[ky] + sig*du1[ky] + sig*du2[ky] + sig*du3[ky];
					u3[ky+101] = u3[ky] + sig*du1[ky] + sig*du2[ky] + sig*du3[ky];
				}
			`,
			Setup: seedArrays(map[string][]int{
				"u1": {300}, "u2": {300}, "u3": {300}, "du1": {300}, "du2": {300}, "du3": {300}}, 8),
		},
		{
			Name: "kernel9", Suite: "livermore", FloatHeavy: true,
			// Integrate predictors: one long statement over a 2-D row.
			Source: `
				int n = 100;
				float px[100][13];
				float dm22 = 0.1; float dm23 = 0.2; float dm24 = 0.3;
				float dm25 = 0.4; float dm26 = 0.5; float dm27 = 0.6;
				float dm28 = 0.7; float c0 = 1.1;
				for (i = 0; i < n; i++) {
					px[i][0] = dm28*px[i][12] + dm27*px[i][11] + dm26*px[i][10] +
						dm25*px[i][9] + dm24*px[i][8] + dm23*px[i][7] +
						dm22*px[i][6] + c0*(px[i][4] + px[i][5]) + px[i][2];
				}
			`,
			Setup: seedArrays(map[string][]int{"px": {100, 13}}, 9),
		},
		{
			Name: "kernel10", Suite: "livermore", FloatHeavy: false,
			// Difference predictors: many loop variants; MVE here needs
			// dozens of registers — the paper's Pentium regression case.
			Source: `
				int n = 100;
				float px[100][13]; float cx[100][13];
				for (i = 0; i < n; i++) {
					ar = cx[i][4];
					br = ar - px[i][4];
					px[i][4] = ar;
					cr = br - px[i][5];
					px[i][5] = br;
					ap = cr - px[i][6];
					px[i][6] = cr;
					bp = ap - px[i][7];
					px[i][7] = ap;
					cp = bp - px[i][8];
					px[i][8] = bp;
					aq = cp - px[i][9];
					px[i][9] = cp;
					bq = aq - px[i][10];
					px[i][10] = aq;
					cq = bq - px[i][11];
					px[i][11] = bq;
					px[i][12] = cq;
				}
			`,
			Setup: seedArrays(map[string][]int{"px": {100, 13}, "cx": {100, 13}}, 10),
		},
		{
			Name: "kernel11", Suite: "livermore", FloatHeavy: false,
			// First sum: prefix recurrence.
			Source: `
				int n = 300;
				float x[310]; float y[310];
				for (k = 1; k < n; k++) {
					x[k] = x[k-1] + y[k];
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {310}, "y": {310}}, 11),
		},
		{
			Name: "kernel12", Suite: "livermore", FloatHeavy: false,
			// First difference: fully parallel.
			Source: `
				int n = 300;
				float x[310]; float y[310];
				for (k = 0; k < n; k++) {
					x[k] = y[k+1] - y[k];
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {310}, "y": {310}}, 12),
		},
		{
			Name: "kernel18", Suite: "livermore", FloatHeavy: true,
			// 2-D explicit hydrodynamics fragment (one row sweep).
			Source: `
				int n = 90;
				float za[100][7]; float zb[100][7]; float zp[100][7];
				float zq[100][7]; float zr[100][7]; float zm[100][7];
				float t = 0.0037; float s = 0.0041;
				int j = 3;
				for (k = 1; k < n; k++) {
					za[k][j] = (zp[k-1][j+1] + zq[k-1][j+1] - zp[k-1][j] - zq[k-1][j]) *
						(zr[k][j] + zr[k-1][j]) / (zm[k-1][j] + zm[k-1][j+1]);
					zb[k][j] = (zp[k-1][j] + zq[k-1][j] - zp[k][j] - zq[k][j]) *
						(zr[k][j] + zr[k][j-1]) / (zm[k][j] + zm[k-1][j]);
				}
			`,
			Setup: seedArrays(map[string][]int{
				"za": {100, 7}, "zb": {100, 7}, "zp": {100, 7}, "zq": {100, 7}, "zr": {100, 7}, "zm": {100, 7}}, 18),
		},
		{
			Name: "kernel21", Suite: "livermore", FloatHeavy: true,
			// Matrix product inner loop.
			Source: `
				int n = 100;
				float px[100][26]; float vy[100][26]; float cx[100][26];
				int j = 5; int k2 = 7;
				for (i = 0; i < n; i++) {
					px[i][j] = px[i][j] + vy[i][k2] * cx[i][j];
				}
			`,
			Setup: seedArrays(map[string][]int{"px": {100, 26}, "vy": {100, 26}, "cx": {100, 26}}, 21),
		},
		{
			Name: "kernel24", Suite: "livermore", FloatHeavy: false,
			// Find location of first minimum: the conditional-branch loop
			// the paper highlights for ICC (5 → 3.5 bundles).
			Source: `
				int n = 300;
				float x[300];
				float xmin = x[0];
				int m = 0;
				bool p = false;
				for (k = 1; k < n; k++) {
					p = x[k] < xmin;
					if (p) m = k;
					if (p) xmin = x[k];
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {300}}, 24),
		},
	}
}

func linpack() []Kernel {
	return []Kernel{
		{
			Name: "daxpy", Suite: "linpack", FloatHeavy: true,
			Source: `
				int n = 400;
				float dx[400]; float dy[400];
				float da = 0.35;
				for (i = 0; i < n; i++) {
					dy[i] = dy[i] + da * dx[i];
				}
			`,
			Setup: seedArrays(map[string][]int{"dx": {400}, "dy": {400}}, 31),
		},
		{
			Name: "ddot", Suite: "linpack", FloatHeavy: true,
			Source: `
				int n = 400;
				float dx[400]; float dy[400];
				float dtemp = 0.0;
				for (i = 0; i < n; i++) {
					dtemp += dx[i] * dy[i];
				}
			`,
			Setup: seedArrays(map[string][]int{"dx": {400}, "dy": {400}}, 32),
		},
		{
			Name: "ddot2", Suite: "linpack", FloatHeavy: true,
			// Two-MI formulation of ddot (the paper's ddot2 variant): the
			// product is a separate statement, giving SLMS an MI to
			// overlap.
			Source: `
				int n = 400;
				float dx[400]; float dy[400];
				float dtemp = 0.0; float t = 0.0;
				for (i = 0; i < n; i++) {
					t = dx[i] * dy[i];
					dtemp = dtemp + t;
				}
			`,
			Setup: seedArrays(map[string][]int{"dx": {400}, "dy": {400}}, 33),
		},
		{
			Name: "dscal", Suite: "linpack", FloatHeavy: true,
			Source: `
				int n = 400;
				float dx[400];
				float da = 1.02;
				for (i = 0; i < n; i++) {
					dx[i] = da * dx[i];
				}
			`,
			Setup: seedArrays(map[string][]int{"dx": {400}}, 34),
		},
		{
			Name: "idamax", Suite: "linpack", FloatHeavy: false,
			// Index of element with largest absolute value.
			Source: `
				int n = 300;
				float dx[300];
				float dmax = abs(dx[0]);
				int idx = 0;
				bool p = false;
				for (i = 1; i < n; i++) {
					p = abs(dx[i]) > dmax;
					if (p) idx = i;
					if (p) dmax = abs(dx[i]);
				}
			`,
			Setup: seedArrays(map[string][]int{"dx": {300}}, 35),
		},
		{
			Name: "idamax2", Suite: "linpack", FloatHeavy: false,
			// Variant with the absolute value hoisted into its own MI.
			Source: `
				int n = 300;
				float dx[300];
				float dmax = abs(dx[0]);
				int idx = 0;
				float v = 0.0;
				bool p = false;
				for (i = 1; i < n; i++) {
					v = abs(dx[i]);
					p = v > dmax;
					if (p) idx = i;
					if (p) dmax = v;
				}
			`,
			Setup: seedArrays(map[string][]int{"dx": {300}}, 36),
		},
		{
			Name: "dmxpy", Suite: "linpack", FloatHeavy: true,
			// Matrix-vector product row update (inner loop).
			Source: `
				int n = 200;
				float y[200]; float x[200]; float m[200][8];
				int j = 3;
				for (i = 0; i < n; i++) {
					y[i] = y[i] + x[j] * m[i][j];
				}
			`,
			Setup: seedArrays(map[string][]int{"y": {200}, "x": {200}, "m": {200, 8}}, 37),
		},
	}
}

func nas() []Kernel {
	return []Kernel{
		{
			Name: "mxm", Suite: "nas", FloatHeavy: true,
			// Matrix multiply inner loop (unrolled by 2 in NASKER style).
			Source: `
				int n = 120;
				float a[120][4]; float b[120][4]; float c[120][4];
				int j = 1; int k2 = 2;
				for (i = 0; i < n; i++) {
					c[i][j] = c[i][j] + a[i][k2] * b[k2][j] + a[i][k2+1] * b[k2+1][j];
				}
			`,
			Setup: seedArrays(map[string][]int{"a": {120, 4}, "b": {120, 4}, "c": {120, 4}}, 41),
		},
		{
			Name: "cfft2d", Suite: "nas", FloatHeavy: true,
			// FFT butterfly row (real/imag interleaved as two arrays).
			Source: `
				int n = 128;
				float xr[300]; float xi[300]; float wr[300]; float wi[300];
				for (i = 0; i < n; i++) {
					tr = wr[i] * xr[i+128] - wi[i] * xi[i+128];
					ti = wr[i] * xi[i+128] + wi[i] * xr[i+128];
					xr[i+128] = xr[i] - tr;
					xi[i+128] = xi[i] - ti;
					xr[i] = xr[i] + tr;
					xi[i] = xi[i] + ti;
				}
			`,
			Setup: seedArrays(map[string][]int{"xr": {300}, "xi": {300}, "wr": {300}, "wi": {300}}, 42),
		},
		{
			Name: "cholsky", Suite: "nas", FloatHeavy: true,
			// Cholesky factorization update row.
			Source: `
				int n = 150;
				float a[160]; float b[160]; float d[160];
				float f = 0.2;
				for (i = 0; i < n; i++) {
					a[i] = a[i] - f * b[i] * b[i] - d[i] * f;
				}
			`,
			Setup: seedArrays(map[string][]int{"a": {160}, "b": {160}, "d": {160}}, 43),
		},
		{
			Name: "btrix", Suite: "nas", FloatHeavy: true,
			// Block tridiagonal back-substitution stripe.
			Source: `
				int n = 120;
				float s1[140]; float s2[140]; float s3[140]; float u[140];
				for (j = 1; j < n; j++) {
					u[j] = u[j] - s1[j] * u[j-1];
					s3[j] = s3[j] - s2[j] * s1[j];
				}
			`,
			Setup: seedArrays(map[string][]int{"s1": {140}, "s2": {140}, "s3": {140}, "u": {140}}, 44),
		},
		{
			Name: "gmtry", Suite: "nas", FloatHeavy: true,
			// Gaussian elimination inner loop from the geometry kernel.
			Source: `
				int n = 150;
				float rmatrx[160]; float pivot[160];
				float f = 0.15;
				for (i = 0; i < n; i++) {
					rmatrx[i] = rmatrx[i] - pivot[i] * f;
				}
			`,
			Setup: seedArrays(map[string][]int{"rmatrx": {160}, "pivot": {160}}, 45),
		},
		{
			Name: "vpenta", Suite: "nas", FloatHeavy: true,
			// Pentadiagonal inversion sweep (simplified to 1-D stripes).
			Source: `
				int n = 150;
				float x[170]; float y[170]; float a[170]; float b[170]; float c[170];
				for (i = 2; i < n; i++) {
					x[i] = (y[i] - a[i] * x[i-1] - b[i] * x[i-2]) / c[i];
				}
			`,
			Setup: seedArrays(map[string][]int{"x": {170}, "y": {170}, "a": {170}, "b": {170}, "c": {170}}, 46),
		},
	}
}

func stone() []Kernel {
	return []Kernel{
		{
			Name: "stone1", Suite: "stone", FloatHeavy: false,
			// Three-statement update chain over one array.
			Source: `
				int n = 300;
				float a[310];
				for (i = 0; i < n; i++) {
					a[i] += i;
					a[i] *= 6.0;
					a[i] -= 1.0;
				}
			`,
			Setup: seedArrays(map[string][]int{"a": {310}}, 51),
		},
		{
			Name: "stone2", Suite: "stone", FloatHeavy: true,
			// Shifted-copy smoothing.
			Source: `
				int n = 280;
				float a[300]; float b[300];
				for (i = 1; i < n; i++) {
					b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0;
				}
			`,
			Setup: seedArrays(map[string][]int{"a": {300}, "b": {300}}, 52),
		},
		{
			Name: "stone3", Suite: "stone", FloatHeavy: true,
			// Two coupled streams with a cross-iteration flow.
			Source: `
				int n = 250;
				float a[280]; float b[280];
				float t = 0.0;
				for (i = 1; i < n; i++) {
					t = a[i-1] * 2.0;
					b[i] = b[i] + t;
					a[i] = t + b[i];
				}
			`,
			Setup: seedArrays(map[string][]int{"a": {280}, "b": {280}}, 53),
		},
		{
			Name: "stone4", Suite: "stone", FloatHeavy: false,
			// Strided gather/scatter pair.
			Source: `
				int n = 140;
				float a[300]; float b[300];
				for (i = 0; i < n; i++) {
					a[2*i] = b[2*i+1] * 0.5 + b[2*i] * 0.25;
					b[2*i] = a[2*i+1] + 1.0;
				}
			`,
			Setup: seedArrays(map[string][]int{"a": {300}, "b": {300}}, 54),
		},
	}
}
