package bench

import (
	"testing"

	"slms/internal/core"
	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/slc"
	"slms/internal/source"
)

func TestKernelCountMatchesPaper(t *testing.T) {
	if n := len(Kernels()); n != 31 {
		t.Errorf("kernel count = %d, want 31 (\"out of 31 loops that were tested\")", n)
	}
}

func TestKernelsParseAndRun(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, err := source.Parse(k.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			env := interp.NewEnv()
			if k.Setup != nil {
				k.Setup(env)
			}
			if err := interp.Run(prog, env); err != nil {
				t.Fatalf("interp: %v", err)
			}
		})
	}
}

// Every kernel must survive the full SLMS + compile + simulate matrix
// with results identical to the untransformed run (RunExperiment checks
// this internally).
func TestKernelsThroughPipeline(t *testing.T) {
	d := machine.IA64Like()
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			out, err := measure(k, d, pipeline.WeakO3)
			if err != nil {
				t.Fatalf("measure: %v", err)
			}
			if out.Base.Cycles <= 0 || out.SLMS.Cycles <= 0 {
				t.Fatalf("degenerate cycle counts: %+v", out)
			}
			t.Logf("weak-O3 ia64: speedup=%.3f applied=%v", out.Speedup, out.Applied)
		})
	}
}

func TestLookupAndSuites(t *testing.T) {
	if Lookup("kernel8") == nil || Lookup("nosuch") != nil {
		t.Error("Lookup misbehaves")
	}
	total := 0
	for _, s := range []string{"livermore", "linpack", "nas", "stone"} {
		n := len(Suite(s))
		if n == 0 {
			t.Errorf("suite %s is empty", s)
		}
		total += n
	}
	if total != len(Kernels()) {
		t.Errorf("suites do not partition the kernels")
	}
}

func TestFigure14ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	f, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f.Table())
	applied, helped := 0, 0
	for _, r := range f.Rows {
		if r.Applied {
			applied++
			if r.Value > 1.0 {
				helped++
			}
		}
	}
	if applied < 10 {
		t.Errorf("SLMS applied to only %d Livermore+Linpack loops", applied)
	}
	// The paper's headline: the majority of loops speed up on the weak
	// compiler.
	if helped*2 < applied {
		t.Errorf("SLMS helped only %d of %d applied loops on the weak compiler", helped, applied)
	}
}

func TestCaseAKernel8Bundles(t *testing.T) {
	f, err := CaseA()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f.Table())
	r := f.Rows[0]
	if !r.Applied {
		t.Fatal("SLMS not applied to kernel 8")
	}
	if r.Value2 >= r.Value {
		t.Errorf("SLMS should reduce kernel-8 bundles/iter: %0.f → %0.f (paper: 23 → 16)", r.Value, r.Value2)
	}
}

func TestFilterReproducesSwapExample(t *testing.T) {
	// The §4 swap loop is filtered; a compute-heavy loop is not.
	src := `
		float X[20][20];
		int i1 = 1; int j1 = 2;
		float CT = 0.0;
		for (k = 0; k < 20; k++) {
			CT = X[k][i1];
			X[k][i1] = X[k][j1] * 2.0;
			X[k][j1] = CT;
		}
	`
	_, results, err := core.TransformProgram(source.MustParse(src), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Applied {
			t.Error("swap loop must be filtered (memory-ref ratio ≥ 0.85)")
		}
	}
}

func TestDeterministicSeeding(t *testing.T) {
	k := Lookup("kernel1")
	e1, e2 := interp.NewEnv(), interp.NewEnv()
	k.Setup(e1)
	k.Setup(e2)
	if d := interp.Compare(e1, e2, interp.CompareOpts{}); len(d) != 0 {
		t.Errorf("seeding is not deterministic: %v", d)
	}
}

func TestCensusShape(t *testing.T) {
	if testing.Short() {
		t.Skip("census is slow")
	}
	rows, err := Census()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 31 {
		t.Fatalf("census rows = %d, want 31", len(rows))
	}
	both, onlyBefore := 0, 0
	for _, r := range rows {
		if r.IMSBefore && r.IMSAfter {
			both++
		} else if r.IMSBefore {
			onlyBefore++
		}
	}
	// The paper's shape: machine MS keeps firing on the large majority of
	// SLMSed loops, and SLMS prevents it on a couple (register pressure).
	if both < 25 {
		t.Errorf("MS before+after on only %d loops (paper: 26 of 31)", both)
	}
	if onlyBefore == 0 {
		t.Error("expected at least one loop where SLMS stops machine MS (paper: 2)")
	}
	t.Logf("\n%s", CensusTable(rows))
}

func TestFig17Kernel10Regresses(t *testing.T) {
	// The paper's specific Pentium story: kernel 10's many loop variants
	// make MVE spill on the 8-register machine.
	k := Lookup("kernel10")
	out, err := measure(*k, machine.PentiumLike(), pipeline.WeakO3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Applied {
		t.Fatal("SLMS not applied to kernel10")
	}
	if out.Speedup >= 1.0 {
		t.Errorf("kernel10 should regress on the small register file, got %.3f", out.Speedup)
	}
	if out.SLMSArt.Alloc.SpilledRegs == 0 {
		t.Error("expected the SLMSed kernel10 to spill registers")
	}
	t.Logf("kernel10 pentium: speedup=%.3f spilled=%d maxLiveFP=%d",
		out.Speedup, out.SLMSArt.Alloc.SpilledRegs, out.SLMSArt.Alloc.MaxLiveFloat)
}

func TestARMPowerCyclesCorrelate(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Figures 21/22: per-kernel power and cycle ratios must agree in
	// direction on the clear cases (both >1.05 or both <0.95).
	d := machine.ARM7Like()
	agree, disagree := 0, 0
	for _, k := range append(Suite("livermore"), Suite("linpack")...) {
		out, err := measure(k, d, pipeline.WeakO3)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Applied {
			continue
		}
		c, p := out.Speedup, out.PowerRatio
		switch {
		case c > 1.05 && p > 1.0, c < 0.95 && p < 1.0:
			agree++
		case c > 1.05 && p < 0.95, c < 0.95 && p > 1.05:
			disagree++
		}
	}
	if disagree > agree/3 {
		t.Errorf("power and cycles diverge too often: agree=%d disagree=%d", agree, disagree)
	}
	t.Logf("correlation: agree=%d disagree=%d", agree, disagree)
}

// The extended Livermore kernels must also survive the whole
// SLMS + SLC + compile + simulate matrix with identical results.
func TestExtendedKernelsThroughPipeline(t *testing.T) {
	d := machine.IA64Like()
	for _, k := range KernelsExtended() {
		if k.Suite != "livermore-ext" {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) {
			// Interpreter run first.
			prog := source.MustParse(k.Source)
			env := interp.NewEnv()
			k.Setup(env)
			if err := interp.Run(prog, env); err != nil {
				t.Fatalf("interp: %v", err)
			}
			// Then the measured experiment (equivalence checked inside).
			out, err := measure(k, d, pipeline.WeakO3)
			if err != nil {
				t.Fatalf("measure: %v", err)
			}
			t.Logf("weak-O3 ia64: speedup=%.3f applied=%v", out.Speedup, out.Applied)
			// kernel13 STORES through an indirect subscript: the unknown
			// dependence must stop SLMS. (kernel14 only LOADS indirectly
			// from a read-only array, which is safe to schedule.)
			if k.Name == "kernel13" && out.Applied {
				t.Errorf("%s stores through an indirect subscript; SLMS must refuse", k.Name)
			}
		})
	}
}

// kernel19 (downward) goes through the SLC driver's mirroring and must
// stay semantically identical.
func TestExtendedKernel19SLC(t *testing.T) {
	var k *Kernel
	for _, kk := range KernelsExtended() {
		if kk.Name == "kernel19" {
			kk := kk
			k = &kk
		}
	}
	if k == nil {
		t.Fatal("kernel19 missing")
	}
	prog := source.MustParse(k.Source)
	res, err := slc.Optimize(prog, slc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Actions {
		t.Logf("%s", a)
	}
	e1, e2 := interp.NewEnv(), interp.NewEnv()
	k.Setup(e1)
	k.Setup(e2)
	if err := interp.Run(prog, e1); err != nil {
		t.Fatal(err)
	}
	if err := interp.Run(res.Program, e2); err != nil {
		t.Fatalf("slc output: %v", err)
	}
	if d := interp.Compare(e1, e2, interp.CompareOpts{FloatTol: 1e-6}); len(d) > 0 {
		t.Fatalf("mismatch: %v", d)
	}
}

// TestAllFiguresGenerate exercises every figure, ablation and special
// report end to end (skipped in -short mode; each one internally
// re-verifies result equivalence for every measurement).
func TestAllFiguresGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	figs, err := AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 13 {
		t.Errorf("expected 13 figures, got %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Rows) == 0 {
			t.Errorf("%s has no rows", f.ID)
		}
		if f.Table() == "" {
			t.Errorf("%s renders empty", f.ID)
		}
	}
	abls, err := AllAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(abls) != 5 {
		t.Errorf("expected 5 ablations, got %d", len(abls))
	}
	ext, err := Extensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Rows) != 3 {
		t.Errorf("extensions: %d rows", len(ext.Rows))
	}
	// The §10 headline: the pipelined while-loop beats the unrolled one.
	var unroll, pipe float64
	for _, r := range ext.Rows {
		switch r.Kernel {
		case "while-unroll":
			unroll = r.Value
		case "while-pipe":
			pipe = r.Value
		}
	}
	if pipe <= unroll {
		t.Errorf("§10: pipelined (%.3f) should beat unrolled (%.3f)", pipe, unroll)
	}
	if _, err := ByID("nosuch"); err == nil {
		t.Error("ByID should reject unknown ids")
	}
	for _, id := range FigureIDs() {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
}
