package bench

import (
	"reflect"
	"strings"
	"testing"

	"slms/internal/sched"
)

// TestOptgapCensus pins the census contract the BENCH trajectory and the
// compare gate rely on: every counted loop in the corpus gets a verdict,
// the verdict families add up, and the search-found gap kernels really
// do expose a heuristic miss that the exact scheduler closes.
func TestOptgapCensus(t *testing.T) {
	rows, sum, err := OptgapCensus(OptgapCorpus(), "standard")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("census produced no rows")
	}
	if sum.Loops != len(rows) {
		t.Fatalf("summary counts %d loops, census emitted %d rows", sum.Loops, len(rows))
	}
	if got := sum.ProvenOptimal + sum.Gaps + sum.ExactOnly + sum.Budget + sum.Infeasible; got != sum.Loops {
		t.Fatalf("verdict families sum to %d, want %d loops", got, sum.Loops)
	}
	known := map[string]bool{
		sched.VerdictOptimal: true, sched.VerdictGap: true,
		sched.VerdictExactOnly: true, sched.VerdictBudget: true,
		sched.VerdictInfeasible: true,
	}
	byKernel := map[string]OptgapRow{}
	for _, r := range rows {
		if !known[r.Verdict] {
			t.Errorf("%s#%d: unknown verdict %q", r.Kernel, r.Loop, r.Verdict)
		}
		if r.Verdict == sched.VerdictGap {
			if r.Gap != r.HeurII-r.ExactII || r.Gap <= 0 {
				t.Errorf("%s#%d: gap %d inconsistent with heur II %d, exact II %d",
					r.Kernel, r.Loop, r.Gap, r.HeurII, r.ExactII)
			}
			if r.Cert == "" {
				t.Errorf("%s#%d: gap verdict without a certificate", r.Kernel, r.Loop)
			}
		}
		if r.Loop == 1 {
			byKernel[r.Kernel] = r
		}
	}
	if sum.ProvenOptimal == 0 {
		t.Error("no loop proven optimal — the exact prover is not doing its job")
	}
	if sum.Gaps == 0 {
		t.Error("no heuristic-vs-exact gap in the corpus — the optgap kernels regressed")
	}
	// The two search-found kernels are the regression anchors: the
	// heuristic's height-priority placement misses the minimal II by one,
	// and the exact scheduler both finds and proves the lower II.
	for _, want := range []struct {
		kernel          string
		heurII, exactII int
	}{
		{"heurmiss", 6, 5},
		{"heurmiss2", 8, 7},
	} {
		r, ok := byKernel[want.kernel]
		if !ok {
			t.Errorf("census has no row for %s", want.kernel)
			continue
		}
		if r.Verdict != sched.VerdictGap || r.HeurII != want.heurII || r.ExactII != want.exactII {
			t.Errorf("%s: verdict %q heur II %d exact II %d, want gap %d->%d",
				want.kernel, r.Verdict, r.HeurII, r.ExactII, want.heurII, want.exactII)
		}
	}
	if !strings.Contains(OptgapTable(rows, sum), "proven optimal:") {
		t.Error("OptgapTable lost its summary line")
	}
}

// The census is pure static scheduling — identical inputs must yield
// byte-identical rows, or the compare gate would flap. Quick effort
// keeps the double run cheap; determinism is effort-independent.
func TestOptgapCensusDeterministic(t *testing.T) {
	rows1, sum1, err := OptgapCensus(OptgapCorpus(), "quick")
	if err != nil {
		t.Fatal(err)
	}
	rows2, sum2, err := OptgapCensus(OptgapCorpus(), "quick")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Error("census rows differ between identical runs")
	}
	if !reflect.DeepEqual(sum1, sum2) {
		t.Error("census summaries differ between identical runs")
	}
}

func TestFigureOptgap(t *testing.T) {
	f, err := FigureOptgap()
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "optgap" {
		t.Fatalf("figure ID = %q", f.ID)
	}
	if len(f.Series) != 2 {
		t.Fatalf("want a heuristic and an exact series, got %v", f.Series)
	}
	if len(f.Rows) == 0 {
		t.Fatal("figure has no rows")
	}
	if len(f.Notes) == 0 {
		t.Fatal("figure lost its census summary note")
	}
	for _, r := range f.Rows {
		if r.Value2 > 0 && r.Value2 > r.Value && !strings.Contains(r.Note, "no schedule") {
			t.Errorf("%s: exact II %.0f exceeds heuristic II %.0f", r.Kernel, r.Value2, r.Value)
		}
	}
}
