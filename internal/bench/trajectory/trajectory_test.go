package trajectory

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slms/internal/bench"
)

// snapshot writes a minimal legacy RunStats BENCH file.
func snapshot(t *testing.T, dir, name string, rs *bench.RunStats) string {
	t.Helper()
	blob, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// legsSnapshot writes a two-leg BENCH file.
func legsSnapshot(t *testing.T, dir, name string, serial, parallel *bench.RunStats) string {
	t.Helper()
	legs := &bench.LegsStats{Schema: bench.LegsSchema, Serial: serial, Parallel: parallel}
	if serial.CyclesPerSecond > 0 {
		legs.Scaling = parallel.CyclesPerSecond / serial.CyclesPerSecond
	}
	blob, err := json.Marshal(legs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(cycles int64, cps float64, kernels ...bench.KernelStat) *bench.RunStats {
	return &bench.RunStats{
		TotalWallSeconds: float64(cycles) / cps,
		SimulatedCycles:  cycles,
		CyclesPerSecond:  cps,
		CacheHits:        90,
		CacheMisses:      10,
		CacheHitRate:     0.9,
		Caches: []bench.CacheStat{
			{Cache: "parse", Hits: 30, Misses: 3, HitRate: 30.0 / 33},
			{Cache: "transform", Hits: 30, Misses: 3, HitRate: 30.0 / 33},
			{Cache: "compile", Hits: 30, Misses: 4, HitRate: 30.0 / 34},
		},
		Phases:  []bench.PhaseStat{{Phase: "compile", Count: 10, Seconds: 0.5}},
		Kernels: kernels,
	}
}

func kernel(name string, base, slms int64) bench.KernelStat {
	return bench.KernelStat{
		Kernel: name, Seconds: 0.1,
		Phases:     map[string]float64{"compile": 0.1},
		BaseCycles: base, SLMSCycles: slms,
	}
}

func TestCleanSeries(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		snapshot(t, dir, "BENCH_1.json", run(1000, 1e6, kernel("dot", 600, 400))),
		snapshot(t, dir, "BENCH_2.json", run(1000, 2e6, kernel("dot", 600, 400))),
		legsSnapshot(t, dir, "BENCH_3.json",
			run(1000, 1.5e6, kernel("dot", 600, 400)),
			run(1000, 3e6, kernel("dot", 600, 400))),
	}
	s, err := Build(paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Failed() {
		t.Fatalf("clean series reported regressions: %v", s.Regressions)
	}
	if len(s.Points) != 3 || len(s.Deltas) != 2 {
		t.Fatalf("got %d points, %d deltas, want 3, 2", len(s.Points), len(s.Deltas))
	}
	p3 := s.Points[2]
	if !p3.Legs || p3.SerialCPS != 1.5e6 || p3.ParallelCPS != 3e6 || p3.Scaling != 2 {
		t.Errorf("legs point wrong: %+v", p3)
	}
	if d := s.Deltas[0]; d.GatedKernels != 1 || d.CPSDelta != 1.0 {
		t.Errorf("delta 1->2 wrong: %+v", d)
	}

	md := s.Markdown()
	for _, want := range []string{
		"BENCH_1", "BENCH_3", "## Cache split", "| compile |",
		"## Adjacent-pair verdicts", "| ok |", "2.00x",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "REGRESSED") {
		t.Errorf("clean markdown mentions REGRESSED:\n%s", md)
	}
}

func TestSyntheticRegressionFails(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		snapshot(t, dir, "BENCH_1.json", run(1000, 1e6, kernel("dot", 600, 400))),
		// +50% base cycles: far beyond the 5% default threshold.
		snapshot(t, dir, "BENCH_2.json", run(1300, 1e6, kernel("dot", 900, 400))),
	}
	s, err := Build(paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Failed() {
		t.Fatal("injected +50% cycle regression not flagged")
	}
	if len(s.Regressions) != 1 || !strings.Contains(s.Regressions[0], "BENCH_1 -> BENCH_2") {
		t.Errorf("regressions = %v", s.Regressions)
	}
	if !strings.Contains(s.Markdown(), "REGRESSED") {
		t.Errorf("markdown does not flag the regression:\n%s", s.Markdown())
	}
}

func TestPrecisionRegressionFails(t *testing.T) {
	dir := t.TempDir()
	a := run(1000, 1e6, kernel("dot", 600, 400))
	a.Precision = &bench.PrecisionStat{UnknownExact: 2, NewlyPipelined: 3, LowerII: 1}
	b := run(1000, 1e6, kernel("dot", 600, 400))
	b.Precision = &bench.PrecisionStat{UnknownExact: 5, NewlyPipelined: 3, LowerII: 1}
	s, err := Build([]string{
		snapshot(t, dir, "BENCH_1.json", a),
		snapshot(t, dir, "BENCH_2.json", b),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Failed() {
		t.Fatal("unknown-edge growth not flagged")
	}
	if md := s.Markdown(); !strings.Contains(md, "## Dependence precision") {
		t.Errorf("markdown missing the precision section:\n%s", md)
	}
}

func TestNumericOrdering(t *testing.T) {
	dir := t.TempDir()
	// Given out of order, with a two-digit suffix that would sort before
	// BENCH_2 lexically.
	paths := []string{
		snapshot(t, dir, "BENCH_10.json", run(1000, 3e6, kernel("dot", 600, 400))),
		snapshot(t, dir, "BENCH_2.json", run(1000, 1e6, kernel("dot", 600, 400))),
	}
	s, err := Build(paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[0].Label != "BENCH_2" || s.Points[1].Label != "BENCH_10" {
		t.Fatalf("order wrong: %s, %s", s.Points[0].Label, s.Points[1].Label)
	}
	if s.Points[0].Seq != 2 || s.Points[1].Seq != 10 {
		t.Fatalf("seqs wrong: %d, %d", s.Points[0].Seq, s.Points[1].Seq)
	}
}

// TestNumberingGaps: BENCH numbering is a PR sequence, and PRs get
// skipped (no bench change) or reverted — the series must tolerate
// absent numbers (here 2, 5 and 8), keep numeric order across the
// holes, and compare each point against its actual predecessor.
func TestNumberingGaps(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	present := []int{1, 3, 4, 6, 7, 9, 10}
	for i, n := range present {
		// Monotonically improving throughput, so no regression fires.
		paths = append(paths, snapshot(t, dir,
			fmt.Sprintf("BENCH_%d.json", n),
			run(1000, float64(i+1)*1e6, kernel("dot", 600, 400))))
	}
	// Feed them shuffled to prove ordering is by sequence, not input.
	paths[0], paths[len(paths)-1] = paths[len(paths)-1], paths[0]

	s, err := Build(paths, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(present) {
		t.Fatalf("points = %d, want %d (gaps must not drop neighbors)", len(s.Points), len(present))
	}
	for i, p := range s.Points {
		if p.Seq != present[i] {
			t.Errorf("point %d: seq = %d, want %d (numeric order across gaps)", i, p.Seq, present[i])
		}
		if want := fmt.Sprintf("BENCH_%d", present[i]); p.Label != want {
			t.Errorf("point %d: label = %q, want %q", i, p.Label, want)
		}
	}
	if s.Failed() {
		t.Errorf("improving series across gaps flagged regressions: %v", s.Regressions)
	}

	// A regression across a gap names the true neighbors: 4 -> 6.
	paths = append(paths, snapshot(t, dir, "BENCH_6.json",
		run(1300, 3e6, kernel("dot", 600, 900))))
	s2, err := Build([]string{paths[1], paths[2], paths[len(paths)-1]}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range s2.Regressions {
		if strings.Contains(r, "BENCH_4 -> BENCH_6") {
			found = true
		}
	}
	if !found {
		t.Errorf("regression across the 5-gap not attributed to BENCH_4 -> BENCH_6: %v", s2.Regressions)
	}
}

func TestRealSnapshots(t *testing.T) {
	// The repository's committed history must always form a clean
	// trajectory: identical deterministic cycle totals across snapshots,
	// no precision regressions.
	paths, err := filepath.Glob("../../../BENCH_*.json")
	if err != nil || len(paths) < 2 {
		t.Skipf("committed snapshots unavailable (%d found, err %v)", len(paths), err)
	}
	s, err := Build(paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Failed() {
		t.Fatalf("committed trajectory regressed: %v", s.Regressions)
	}
	if _, err := s.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("empty path list did not error")
	}
	if _, err := Build([]string{"no-such-file.json"}, 0); err == nil {
		t.Error("missing file did not error")
	}
}

func TestOptimalityRegressionFails(t *testing.T) {
	dir := t.TempDir()
	a := run(1000, 1e6, kernel("dot", 600, 400))
	a.Optimality = &bench.OptgapStat{Loops: 1, ProvenOptimal: 1, Rows: []bench.OptgapRow{
		{Kernel: "dot", Loop: 1, Verdict: "proven-optimal", HeurII: 3, ExactII: 3},
	}}
	b := run(1000, 1e6, kernel("dot", 600, 400))
	b.Optimality = &bench.OptgapStat{Loops: 1, Budget: 1, Rows: []bench.OptgapRow{
		{Kernel: "dot", Loop: 1, Verdict: "budget-exhausted", HeurII: 3},
	}}
	s, err := Build([]string{
		snapshot(t, dir, "BENCH_1.json", a),
		snapshot(t, dir, "BENCH_2.json", b),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Failed() {
		t.Fatal("proven-optimal verdict flip not flagged")
	}
	if md := s.Markdown(); !strings.Contains(md, "## Scheduler optimality") {
		t.Errorf("markdown missing the optimality section:\n%s", md)
	}
}
