// Package trajectory folds the repository's committed BENCH_*.json
// harness snapshots into one time-series document: cycles/second for
// both legs, the per-cache hit/miss split, the dependence-precision
// census, and per-phase seconds, ordered by snapshot number. Adjacent
// snapshots are diffed with the compare gate, so the series doubles as
// a regression report over the whole benchmark history — CI renders it
// as a markdown artifact and fails the build when any adjacent pair
// regressed.
package trajectory

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"slms/internal/bench"
	"slms/internal/bench/compare"
)

// Schema identifies a Series JSON document.
const Schema = "slms-bench-trajectory/v1"

// Point is one BENCH snapshot reduced to its trajectory coordinates.
type Point struct {
	Label string `json:"label"` // file base name, e.g. BENCH_6
	Seq   int    `json:"seq"`   // numeric suffix; ordering key
	// Legs is true for a two-leg (serial + parallel) snapshot; legacy
	// single-RunStats snapshots report the one run as the parallel leg
	// and leave SerialCPS/Scaling zero.
	Legs bool `json:"legs"`

	WallSeconds     float64 `json:"wall_seconds"`
	SimulatedCycles int64   `json:"simulated_cycles"`
	ParallelCPS     float64 `json:"parallel_cps"`
	SerialCPS       float64 `json:"serial_cps,omitempty"`
	Scaling         float64 `json:"scaling,omitempty"`

	CacheHits    int64             `json:"cache_hits"`
	CacheMisses  int64             `json:"cache_misses"`
	CacheHitRate float64           `json:"cache_hit_rate"`
	Caches       []bench.CacheStat `json:"caches,omitempty"`

	Phases []bench.PhaseStat `json:"phases,omitempty"`

	Precision *bench.PrecisionStat `json:"precision,omitempty"`

	Optimality *bench.OptgapStat `json:"optimality,omitempty"`
}

// Delta is the compare-gate outcome between two adjacent snapshots.
type Delta struct {
	From string `json:"from"`
	To   string `json:"to"`
	// WorstCycleDelta is the worst relative per-kernel cycle growth
	// among gated kernels (0 when nothing was gated).
	WorstCycleDelta float64 `json:"worst_cycle_delta"`
	// GatedKernels counts kernels with cycle data on both sides.
	GatedKernels int `json:"gated_kernels"`
	// CPSDelta is the relative parallel cycles/second change —
	// advisory (wall clock), never gated.
	CPSDelta    float64  `json:"cps_delta"`
	Regressions []string `json:"regressions,omitempty"`
}

// Series is the whole trajectory: every snapshot plus every
// adjacent-pair delta.
type Series struct {
	Schema    string  `json:"schema"` // Schema
	Threshold float64 `json:"threshold"`
	Points    []Point `json:"points"`
	Deltas    []Delta `json:"deltas,omitempty"`
	// Regressions flattens every delta's regressions, prefixed with the
	// pair that produced them.
	Regressions []string `json:"regressions,omitempty"`
}

// Failed reports whether any adjacent pair regressed.
func (s *Series) Failed() bool { return len(s.Regressions) > 0 }

// seqOf extracts the numeric suffix of a BENCH_<n>.json path; non-
// conforming names sort after conforming ones, by name.
func seqOf(path string) (int, bool) {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	i := strings.LastIndexByte(base, '_')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(base[i+1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Build loads the given BENCH_*.json snapshots, orders them by numeric
// suffix, and diffs each adjacent pair with the compare gate at the
// given threshold (0 = compare.DefaultCycleThreshold).
func Build(paths []string, threshold float64) (*Series, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("trajectory: no snapshot files")
	}
	if threshold == 0 {
		threshold = compare.DefaultCycleThreshold
	}
	ordered := append([]string(nil), paths...)
	sort.SliceStable(ordered, func(i, j int) bool {
		si, oki := seqOf(ordered[i])
		sj, okj := seqOf(ordered[j])
		if oki != okj {
			return oki
		}
		if oki && si != sj {
			return si < sj
		}
		return ordered[i] < ordered[j]
	})

	s := &Series{Schema: Schema, Threshold: threshold}
	runs := make([]*bench.RunStats, len(ordered))
	for i, path := range ordered {
		rs, legs, err := compare.LoadAny(path)
		if err != nil {
			return nil, fmt.Errorf("trajectory: %w", err)
		}
		runs[i] = rs
		s.Points = append(s.Points, pointOf(path, rs, legs))
	}

	for i := 1; i < len(runs); i++ {
		rep, err := compare.Compare(
			[]*bench.RunStats{runs[i-1]}, []*bench.RunStats{runs[i]},
			compare.Options{CycleThreshold: threshold})
		if err != nil {
			return nil, fmt.Errorf("trajectory: %s vs %s: %w",
				s.Points[i-1].Label, s.Points[i].Label, err)
		}
		d := Delta{
			From:        s.Points[i-1].Label,
			To:          s.Points[i].Label,
			Regressions: rep.Regressions,
		}
		for _, kd := range rep.Kernels {
			if kd.Gated {
				d.GatedKernels++
				if kd.CycleDelta > d.WorstCycleDelta {
					d.WorstCycleDelta = kd.CycleDelta
				}
			}
		}
		if old := s.Points[i-1].ParallelCPS; old > 0 {
			d.CPSDelta = (s.Points[i].ParallelCPS - old) / old
		}
		s.Deltas = append(s.Deltas, d)
		for _, reg := range rep.Regressions {
			s.Regressions = append(s.Regressions,
				fmt.Sprintf("%s -> %s: %s", d.From, d.To, reg))
		}
	}
	return s, nil
}

func pointOf(path string, rs *bench.RunStats, legs *bench.LegsStats) Point {
	p := Point{
		Label:           strings.TrimSuffix(filepath.Base(path), ".json"),
		WallSeconds:     rs.TotalWallSeconds,
		SimulatedCycles: rs.SimulatedCycles,
		ParallelCPS:     rs.CyclesPerSecond,
		CacheHits:       rs.CacheHits,
		CacheMisses:     rs.CacheMisses,
		CacheHitRate:    rs.CacheHitRate,
		Caches:          rs.Caches,
		Phases:          rs.Phases,
		Precision:       rs.Precision,
		Optimality:      rs.Optimality,
	}
	p.Seq, _ = seqOf(path)
	if legs != nil {
		p.Legs = true
		p.Scaling = legs.Scaling
		if legs.Serial != nil {
			p.SerialCPS = legs.Serial.CyclesPerSecond
		}
	}
	return p
}

// JSON renders the series as an indented JSON document with a trailing
// newline (the CI artifact format).
func (s *Series) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Markdown renders the series as a markdown report: the snapshot
// table, the cache split, the precision census, and the adjacent-pair
// verdicts.
func (s *Series) Markdown() string {
	var b strings.Builder
	b.WriteString("# Benchmark trajectory\n\n")
	fmt.Fprintf(&b, "%d snapshots, cycle-regression threshold %.0f%%.\n\n",
		len(s.Points), 100*s.Threshold)

	b.WriteString("| snapshot | wall (s) | cycles | serial c/s | parallel c/s | scaling | cache hit rate |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, p := range s.Points {
		serial, scaling := "-", "-"
		if p.Legs {
			serial = fmt.Sprintf("%.3g", p.SerialCPS)
			scaling = fmt.Sprintf("%.2fx", p.Scaling)
		}
		fmt.Fprintf(&b, "| %s | %.3g | %d | %s | %.3g | %s | %.1f%% |\n",
			p.Label, p.WallSeconds, p.SimulatedCycles,
			serial, p.ParallelCPS, scaling, 100*p.CacheHitRate)
	}

	if rows := cacheRows(s.Points); len(rows) > 0 {
		b.WriteString("\n## Cache split\n\n")
		b.WriteString("| snapshot | cache | hits | misses | hit rate |\n")
		b.WriteString("|---|---|---:|---:|---:|\n")
		b.WriteString(rows)
	}

	if rows := precisionRows(s.Points); len(rows) > 0 {
		b.WriteString("\n## Dependence precision\n\n")
		b.WriteString("| snapshot | unknown edges (exact) | resolved pairs | newly pipelined | lower II |\n")
		b.WriteString("|---|---:|---:|---:|---:|\n")
		b.WriteString(rows)
	}

	if rows := optimalityRows(s.Points); len(rows) > 0 {
		b.WriteString("\n## Scheduler optimality\n\n")
		b.WriteString("| snapshot | loops | proven optimal | gaps (max) | exact-only | budget-exhausted |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|\n")
		b.WriteString(rows)
	}

	if rows := phaseRows(s.Points); len(rows) > 0 {
		b.WriteString("\n## Phase seconds\n\n")
		b.WriteString(rows)
	}

	b.WriteString("\n## Adjacent-pair verdicts\n\n")
	if len(s.Deltas) == 0 {
		b.WriteString("(single snapshot — nothing to compare)\n")
	} else {
		b.WriteString("| pair | gated kernels | worst cycle delta | parallel c/s delta | verdict |\n")
		b.WriteString("|---|---:|---:|---:|---|\n")
		for _, d := range s.Deltas {
			verdict := "ok"
			if len(d.Regressions) > 0 {
				verdict = fmt.Sprintf("**REGRESSED** (%d)", len(d.Regressions))
			}
			fmt.Fprintf(&b, "| %s → %s | %d | %+.1f%% | %+.1f%% | %s |\n",
				d.From, d.To, d.GatedKernels,
				100*d.WorstCycleDelta, 100*d.CPSDelta, verdict)
		}
	}
	if len(s.Regressions) > 0 {
		b.WriteString("\n### Regressions\n\n")
		for _, reg := range s.Regressions {
			fmt.Fprintf(&b, "- %s\n", reg)
		}
	}
	return b.String()
}

func cacheRows(points []Point) string {
	var b strings.Builder
	for _, p := range points {
		for _, cs := range p.Caches {
			fmt.Fprintf(&b, "| %s | %s | %d | %d | %.1f%% |\n",
				p.Label, cs.Cache, cs.Hits, cs.Misses, 100*cs.HitRate)
		}
	}
	return b.String()
}

func precisionRows(points []Point) string {
	var b strings.Builder
	for _, p := range points {
		if p.Precision == nil {
			continue
		}
		pc := p.Precision
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d |\n",
			p.Label, pc.UnknownExact, pc.ResolvedPairs,
			pc.NewlyPipelined, pc.LowerII)
	}
	return b.String()
}

func optimalityRows(points []Point) string {
	var b strings.Builder
	for _, p := range points {
		if p.Optimality == nil {
			continue
		}
		oc := p.Optimality
		fmt.Fprintf(&b, "| %s | %d | %d | %d (%d) | %d | %d |\n",
			p.Label, oc.Loops, oc.ProvenOptimal, oc.Gaps, oc.MaxGap,
			oc.ExactOnly, oc.Budget)
	}
	return b.String()
}

// phaseRows renders one row per snapshot with a column per phase name
// seen anywhere in the series (snapshots predating phase stats show
// dashes).
func phaseRows(points []Point) string {
	names := map[string]bool{}
	for _, p := range points {
		for _, ps := range p.Phases {
			names[ps.Phase] = true
		}
	}
	if len(names) == 0 {
		return ""
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var b strings.Builder
	b.WriteString("| snapshot |")
	for _, n := range sorted {
		fmt.Fprintf(&b, " %s |", n)
	}
	b.WriteString("\n|---|")
	for range sorted {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for _, p := range points {
		byName := map[string]float64{}
		for _, ps := range p.Phases {
			byName[ps.Phase] = ps.Seconds
		}
		fmt.Fprintf(&b, "| %s |", p.Label)
		for _, n := range sorted {
			if v, ok := byName[n]; ok {
				fmt.Fprintf(&b, " %.3gs |", v)
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
