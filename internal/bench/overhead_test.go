package bench

import (
	"context"
	"os"
	"testing"
	"time"

	"slms/internal/obs"
)

// The disabled-tracer instrumentation left in the pipeline's hot paths
// must be unmeasurable: this guard bounds its worst-case cost at under
// 1% of an AllFigures run. The bound is computed, not timed end-to-end
// (two wall-clock runs of the whole suite differ by more than 1% from
// scheduler noise alone): one traced run counts how many span
// operations the suite performs, a micro-benchmark prices the disabled
// path per operation, and the product must stay under 1% of the
// untraced suite's wall time. Env-gated because it re-runs the whole
// figure suite twice; CI sets SLMS_OVERHEAD_CHECK=1.
func TestDisabledTracerOverheadUnderOnePercent(t *testing.T) {
	if os.Getenv("SLMS_OVERHEAD_CHECK") == "" {
		t.Skip("set SLMS_OVERHEAD_CHECK=1 to run the overhead guard")
	}
	resetAll := ResetHarnessState

	// Pass 1 (traced): count the span operations the suite performs.
	resetAll()
	tr := obs.NewTracer()
	obs.Enable(tr)
	if _, err := AllFigures(); err != nil {
		obs.Disable()
		t.Fatal(err)
	}
	obs.Disable()
	spanOps := len(tr.Spans())
	if spanOps == 0 {
		t.Fatal("traced run recorded no spans; the instrumentation is dead")
	}

	// Price the disabled path. Each span in the traced run corresponds
	// to one Root/Child + Attr + End sequence on the nil fast path,
	// plus the request-ID plumbing a served request threads alongside
	// it (context stamping and recall — the correlation machinery must
	// be as free as the spans when tracing is off).
	perOp := testing.Benchmark(func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			rctx := obs.ContextWithRequestID(ctx, "r00000001")
			sp := obs.RootRequest("overhead-probe", obs.RequestIDFrom(rctx))
			sp = sp.Attr("k", i)
			rctx = obs.ContextWithSpan(rctx, sp)
			sp.Child("child").End()
			if obs.SpanFrom(rctx) != sp {
				b.Fatal("span context roundtrip broken")
			}
			sp.End()
		}
	})

	// Pass 2 (untraced): the suite's real wall time.
	resetAll()
	start := time.Now()
	if _, err := AllFigures(); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	overhead := time.Duration(int64(spanOps) * perOp.NsPerOp())
	budget := wall / 100
	t.Logf("span ops: %d; disabled cost/op: %dns; worst-case overhead: %v; wall: %v (budget %v)",
		spanOps, perOp.NsPerOp(), overhead, wall, budget)
	if overhead > budget {
		t.Errorf("disabled-tracer overhead %v exceeds 1%% of AllFigures wall time %v", overhead, wall)
	}
}
