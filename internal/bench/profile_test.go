package bench

import (
	"os"
	"testing"
	"time"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/prof"
	"slms/internal/sim"
	"slms/internal/source"
)

// Every kernel in the corpus, on every machine class and both issue
// policies, must attribute its cycles exactly: the profile's per-cause
// counts sum to Metrics.Cycles with no cycle lost or invented. This is
// the profiler's core invariant — a hot-line table that doesn't add up
// explains nothing.
func TestProfileAttributionSumsExactly(t *testing.T) {
	prof.SetEnabled(true)
	defer prof.SetEnabled(false)
	machines := []*machine.Desc{
		machine.IA64Like(), machine.Power4Like(), machine.PentiumLike(), machine.ARM7Like(),
	}
	compilers := []pipeline.Compiler{
		pipeline.WeakO3, pipeline.StrongO3, pipeline.WeakNoO3,
	}
	for _, k := range Kernels() {
		for _, d := range machines {
			for _, cc := range compilers {
				prog, err := source.ParseCached(k.Source)
				if err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				outs, errs, err := pipeline.RunExperiments(prog, d, cc,
					[]core.Options{core.DefaultOptions()}, k.Setup)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", k.Name, d.Name, cc.Name, err)
				}
				if errs[0] != nil {
					t.Fatalf("%s/%s/%s: %v", k.Name, d.Name, cc.Name, errs[0])
				}
				out := outs[0]
				checkExactSum(t, k.Name+"/base", d.Name, cc.Name, out.Base)
				if out.SLMS != nil {
					checkExactSum(t, k.Name+"/slms", d.Name, cc.Name, out.SLMS)
				}
			}
		}
	}
}

func checkExactSum(t *testing.T, what, mach, cc string, m *sim.Metrics) {
	t.Helper()
	if m.Profile == nil {
		t.Fatalf("%s on %s under %s: no profile recorded", what, mach, cc)
	}
	tot := m.Profile.Totals()
	if got := tot.Total(); got != m.Cycles {
		t.Errorf("%s on %s under %s: attributed %d cycles, simulated %d (delta %d; causes %v)",
			what, mach, cc, got, m.Cycles, got-m.Cycles, tot)
	}
}

// The disabled-profiler instrumentation must be unmeasurable, under the
// same computed bound as the PR 3 tracer guard: a profiled run counts
// the check sites the suite executes, a micro-benchmark prices one
// dormant check, and the product must stay under 1% of the unprofiled
// suite's wall time. Env-gated (re-runs the whole suite); CI sets
// SLMS_OVERHEAD_CHECK=1.
func TestDisabledProfilerOverheadUnderOnePercent(t *testing.T) {
	if os.Getenv("SLMS_OVERHEAD_CHECK") == "" {
		t.Skip("set SLMS_OVERHEAD_CHECK=1 to run the overhead guard")
	}
	resetAll := func() {
		ResetMeasurements()
		core.ResetTransformCache()
		pipeline.ResetCache()
	}

	// Pass 1 (profiled): count the dormant check sites the suite's
	// simulations would touch when disabled — one per instruction (the
	// issue-variant pick), at most one per block execution (static
	// charging) and one per miss, plus one per Run (the enable load);
	// block executions and misses are each bounded by the instruction
	// count, so 3*instrs + runs is a safe over-count.
	resetAll()
	startSnap := obs.Default.Snapshot().Counters
	prof.SetEnabled(true)
	if _, err := AllFigures(); err != nil {
		prof.SetEnabled(false)
		t.Fatal(err)
	}
	prof.SetEnabled(false)
	endSnap := obs.Default.Snapshot().Counters
	instrs := endSnap["sim.instrs"] - startSnap["sim.instrs"]
	runs := endSnap["sim.runs"] - startSnap["sim.runs"]
	if instrs == 0 || runs == 0 {
		t.Fatal("profiled run simulated nothing; the instrumentation is dead")
	}
	checkSites := 3*instrs + runs

	// Price one dormant check: a not-provably-nil pointer load + branch,
	// the exact shape the simulator's hot paths carry when disabled.
	perOp := testing.Benchmark(func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if overheadProbe != nil {
				n++
			}
		}
		probeSink = n
	})

	// Pass 2 (unprofiled): the suite's real wall time.
	resetAll()
	start := time.Now()
	if _, err := AllFigures(); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	overhead := time.Duration(checkSites * perOp.NsPerOp())
	budget := wall / 100
	t.Logf("check sites: %d; disabled cost/op: %dns; worst-case overhead: %v; wall: %v (budget %v)",
		checkSites, perOp.NsPerOp(), overhead, wall, budget)
	if overhead > budget {
		t.Errorf("disabled-profiler overhead %v exceeds 1%% of AllFigures wall time %v", overhead, wall)
	}
}

// overheadProbe is never set: the benchmark's nil check cannot be
// folded away because the compiler must assume another package could
// assign it.
var overheadProbe *int

var probeSink int
