package ir

import (
	"strings"
	"testing"

	"slms/internal/dep"
	"slms/internal/source"
)

func affine(coeff, konst int64) dep.Affine {
	return dep.Affine{Coeff: coeff, Const: konst, OK: true}
}

func TestTagDistanceExact(t *testing.T) {
	a := AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{affine(1, 0)}}
	b := AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{affine(1, 2)}}
	res, d := TagDistance(b, a) // b=i+2 at iter i; a=i at iter i+d: d=2
	if res != dep.DistExact || d != 2 {
		t.Errorf("got %v,%d", res, d)
	}
}

func TestTagDistanceIndependent(t *testing.T) {
	a := AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{affine(2, 0)}}
	b := AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{affine(2, 1)}}
	if res, _ := TagDistance(a, b); res != dep.DistNone {
		t.Errorf("A[2i] vs A[2i+1]: %v", res)
	}
}

func TestTagDistance2DInconsistent(t *testing.T) {
	// dims require different distances: independent.
	a := AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{affine(1, 0), affine(1, 1)}}
	b := AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{affine(1, 0), affine(1, 0)}}
	if res, _ := TagDistance(a, b); res != dep.DistNone {
		t.Errorf("inconsistent dims should be independent: %v", res)
	}
}

func TestTagDistanceDifferentLoops(t *testing.T) {
	a := AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{affine(1, 0)}}
	b := AffineTag{Valid: true, LoopID: 2, Dims: []dep.Affine{affine(1, 0)}}
	if res, _ := TagDistance(a, b); res != dep.DistUnknown {
		t.Errorf("tags from different loops must be unknown: %v", res)
	}
	if res, _ := TagDistance(AffineTag{}, a); res != dep.DistUnknown {
		t.Error("invalid tag must be unknown")
	}
}

func TestSuccs(t *testing.T) {
	f := &Func{ScalarRegs: map[string]int{}, Arrays: map[string]*ArrayInfo{}}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	r := f.NewReg(source.TBool)
	b0.Instrs = []*Instr{{Op: BrFalse, Args: []Val{R(r)}, Target: 2}}
	b1.Instrs = []*Instr{{Op: Br, Target: 0}}
	b2.Instrs = []*Instr{{Op: Halt}}
	n := len(f.Blocks)
	if s := b0.Succs(n); len(s) != 2 || s[0] != 2 || s[1] != 1 {
		t.Errorf("b0 succs = %v", s)
	}
	if s := b1.Succs(n); len(s) != 1 || s[0] != 0 {
		t.Errorf("b1 succs = %v", s)
	}
	if s := b2.Succs(n); len(s) != 0 {
		t.Errorf("b2 succs = %v", s)
	}
}

func TestInstrStringAndUses(t *testing.T) {
	in := &Instr{Op: Add, Type: source.TInt, Dst: 3, Args: []Val{R(1), ImmI(5)}}
	if got := in.String(); got != "r3 = add r1, 5" {
		t.Errorf("String = %q", got)
	}
	if u := in.Uses(); len(u) != 1 || u[0] != 1 {
		t.Errorf("Uses = %v", u)
	}
	ld := &Instr{Op: Load, Dst: 2, Args: []Val{R(7)}, Arr: "A"}
	if got := ld.String(); got != "r2 = ld A[r7]" {
		t.Errorf("String = %q", got)
	}
	st := &Instr{Op: Store, Dst: -1, Args: []Val{ImmI(0), ImmF(1.5)}, Arr: "B"}
	if !strings.Contains(st.String(), "st B[0], 1.5") {
		t.Errorf("String = %q", st.String())
	}
}

func TestDumpMarksLoopBodies(t *testing.T) {
	f := &Func{ScalarRegs: map[string]int{}, Arrays: map[string]*ArrayInfo{}}
	b := f.NewBlock()
	b.IsLoopBody = true
	b.LoopID = 3
	b.Instrs = []*Instr{{Op: Halt}}
	if !strings.Contains(f.Dump(), "loop 3 body") {
		t.Errorf("dump lacks loop marker:\n%s", f.Dump())
	}
	if f.InstrCount() != 1 {
		t.Errorf("InstrCount = %d", f.InstrCount())
	}
}
