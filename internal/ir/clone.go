package ir

import "slms/internal/source"

// Clone returns a deep copy of the function sharing no state the back
// end mutates: blocks, instruction structs, operand slices, register
// tables and array maps are all fresh. Affine tag dims are shared —
// they are write-once during lowering and read-only afterwards.
//
// The copy makes a lowered function reusable across register
// allocation and scheduling runs for different machines: allocate and
// schedule a Clone, keep the original pristine.
func (f *Func) Clone() *Func {
	nf := &Func{
		NumRegs:    f.NumRegs,
		NumLoops:   f.NumLoops,
		Blocks:     make([]*Block, len(f.Blocks)),
		RegTypes:   append([]source.Type(nil), f.RegTypes...),
		ScalarRegs: make(map[string]int, len(f.ScalarRegs)),
		Arrays:     make(map[string]*ArrayInfo, len(f.Arrays)),
	}
	for name, reg := range f.ScalarRegs {
		nf.ScalarRegs[name] = reg
	}
	for name, info := range f.Arrays {
		ai := *info
		ai.DimRegs = append([]int(nil), info.DimRegs...)
		nf.Arrays[name] = &ai
	}
	ninstr, nargs := 0, 0
	for _, b := range f.Blocks {
		ninstr += len(b.Instrs)
		for _, in := range b.Instrs {
			nargs += len(in.Args)
		}
	}
	// Two arenas: one bulk allocation for the instructions, one for the
	// operand slices (the allocator rewrites operands in place).
	instrs := make([]Instr, ninstr)
	args := make([]Val, nargs)
	ip, ap := 0, 0
	for i, b := range f.Blocks {
		nb := &Block{
			ID:         b.ID,
			LoopID:     b.LoopID,
			IsLoopBody: b.IsLoopBody,
			Counted:    b.Counted,
			Instrs:     make([]*Instr, len(b.Instrs)),
		}
		for j, in := range b.Instrs {
			p := &instrs[ip]
			ip++
			*p = *in
			if n := len(in.Args); n > 0 {
				dst := args[ap : ap+n : ap+n]
				ap += n
				copy(dst, in.Args)
				p.Args = dst
			}
			nb.Instrs[j] = p
		}
		nf.Blocks[i] = nb
	}
	return nf
}
