// Package ir defines the three-address virtual instruction set the final
// compiler lowers mini-C programs into. The representation is a CFG of
// basic blocks over an unbounded set of virtual registers; loads and
// stores address named arrays by flattened element index and carry an
// optional affine tag (the subscript as an affine function of the
// innermost loop variable) that the schedulers use for memory
// disambiguation — modelling a compiler front end that forwards its
// dependence analysis to the back end.
package ir

import (
	"fmt"
	"strings"

	"slms/internal/dep"
	"slms/internal/source"
)

// Op is a virtual instruction opcode.
type Op int

// Opcodes.
const (
	Nop     Op = iota
	Mov        // dst = a
	Add        // dst = a + b
	Sub        // dst = a - b
	Mul        // dst = a * b
	Div        // dst = a / b
	Mod        // dst = a % b (int)
	Neg        // dst = -a
	CmpLT      // dst = a < b
	CmpLE      // dst = a <= b
	CmpGT      // dst = a > b
	CmpGE      // dst = a >= b
	CmpEQ      // dst = a == b
	CmpNE      // dst = a != b
	And        // dst = a && b
	Or         // dst = a || b
	Not        // dst = !a
	Cvt        // dst = convert a to Type
	Load       // dst = Arr[a]         (a = flattened element index)
	Store      // Arr[a] = b
	Call       // dst = Fn(args...)    (math intrinsic)
	Select     // dst = a ? b : c      (predication / conditional move)
	Br         // goto Target
	BrTrue     // if a goto Target else fall through
	BrFalse    // if !a goto Target else fall through
	Halt       // end of program
)

var opNames = map[Op]string{
	Nop: "nop", Mov: "mov", Add: "add", Sub: "sub", Mul: "mul", Div: "div",
	Mod: "mod", Neg: "neg",
	CmpLT: "cmplt", CmpLE: "cmple", CmpGT: "cmpgt", CmpGE: "cmpge",
	CmpEQ: "cmpeq", CmpNE: "cmpne",
	And: "and", Or: "or", Not: "not", Cvt: "cvt",
	Load: "ld", Store: "st", Call: "call", Select: "sel",
	Br: "br", BrTrue: "brt", BrFalse: "brf", Halt: "halt",
}

// String renders the opcode mnemonic.
func (o Op) String() string { return opNames[o] }

// IsBranch reports whether the op ends a basic block.
func (o Op) IsBranch() bool { return o == Br || o == BrTrue || o == BrFalse || o == Halt }

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// ValKind discriminates operand kinds.
type ValKind int

// Operand kinds.
const (
	KReg ValKind = iota
	KInt
	KFloat
	KBool
)

// Val is an instruction operand: a virtual register or an immediate.
type Val struct {
	Kind ValKind
	Reg  int
	I    int64
	F    float64
	B    bool
}

// R makes a register operand.
func R(reg int) Val { return Val{Kind: KReg, Reg: reg} }

// ImmI makes an integer immediate.
func ImmI(v int64) Val { return Val{Kind: KInt, I: v} }

// ImmF makes a float immediate.
func ImmF(v float64) Val { return Val{Kind: KFloat, F: v} }

// ImmB makes a bool immediate.
func ImmB(v bool) Val { return Val{Kind: KBool, B: v} }

// String renders the operand.
func (v Val) String() string {
	switch v.Kind {
	case KReg:
		return fmt.Sprintf("r%d", v.Reg)
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// AffineTag is the memory-disambiguation tag on loads/stores: the
// original source subscripts as affine functions of the innermost loop
// variable, valid only within the tagged loop (LoopID). A "strong" final
// compiler uses the tags to compute exact cross-iteration memory
// dependence distances; a "weak" one ignores them and treats every
// same-array pair as dependent.
type AffineTag struct {
	Valid  bool
	LoopID int
	Dims   []dep.Affine // one per source subscript dimension
}

// TagDistance compares two memory tags like the source-level dependence
// test: it reports whether the accesses can collide and at which
// iteration distance (d = iteration(b) - iteration(a)).
func TagDistance(a, b AffineTag) (dep.DistResult, int64) {
	if !a.Valid || !b.Valid || a.LoopID != b.LoopID || len(a.Dims) != len(b.Dims) {
		return dep.DistUnknown, 0
	}
	res := dep.DistAlways
	var dist int64
	have := false
	for k := range a.Dims {
		r, d := dep.SubscriptDistance(a.Dims[k], b.Dims[k])
		switch r {
		case dep.DistNone:
			return dep.DistNone, 0
		case dep.DistUnknown:
			res = dep.DistUnknown
		case dep.DistExact:
			if have && d != dist {
				return dep.DistNone, 0
			}
			have, dist = true, d
			if res == dep.DistAlways {
				res = dep.DistExact
			}
		}
	}
	if res == dep.DistExact {
		return res, dist
	}
	return res, 0
}

// Instr is one three-address instruction.
type Instr struct {
	Op   Op
	Type source.Type // operation/result type
	Dst  int         // destination virtual register, -1 if none
	Args []Val
	Arr  string // Load/Store: array name
	Fn   string // Call: intrinsic name
	// Target is the destination block ID for branches.
	Target int
	// Tag disambiguates memory accesses.
	Tag AffineTag
	// Line is the 1-based source line the instruction was lowered from
	// (0 = compiler-generated). The profiler attributes cycles to it.
	Line int32
}

// String renders the instruction.
func (in *Instr) String() string {
	var args []string
	for _, a := range in.Args {
		args = append(args, a.String())
	}
	switch in.Op {
	case Load:
		return fmt.Sprintf("r%d = ld %s[%s]", in.Dst, in.Arr, args[0])
	case Store:
		return fmt.Sprintf("st %s[%s], %s", in.Arr, args[0], args[1])
	case Br:
		return fmt.Sprintf("br b%d", in.Target)
	case BrTrue:
		return fmt.Sprintf("brt %s, b%d", args[0], in.Target)
	case BrFalse:
		return fmt.Sprintf("brf %s, b%d", args[0], in.Target)
	case Halt:
		return "halt"
	case Call:
		return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Fn, strings.Join(args, ", "))
	}
	if in.Dst >= 0 {
		return fmt.Sprintf("r%d = %s %s", in.Dst, in.Op, strings.Join(args, ", "))
	}
	return fmt.Sprintf("%s %s", in.Op, strings.Join(args, ", "))
}

// Uses returns the registers read by the instruction.
func (in *Instr) Uses() []int {
	return in.AppendUses(nil)
}

// AppendUses appends the registers read by the instruction to rs and
// returns the extended slice. Hot paths pass a reused buffer to avoid
// the per-call allocation of Uses.
func (in *Instr) AppendUses(rs []int) []int {
	for _, a := range in.Args {
		if a.Kind == KReg {
			rs = append(rs, a.Reg)
		}
	}
	return rs
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []*Instr
	// LoopID != 0 marks the block as (part of) the body of that loop;
	// the innermost-loop body blocks are candidates for modulo
	// scheduling by the strong final compiler.
	LoopID int
	// IsLoopBody is true for the single body block of an innermost loop
	// whose body is branch-free (counted or while).
	IsLoopBody bool
	// Counted marks bodies of canonical counted loops — the only ones a
	// machine-level modulo scheduler may pipeline (while-loop bodies are
	// rotated but never modulo scheduled).
	Counted bool
}

// Succs returns the possible successor block IDs (fallthrough is ID+1 by
// construction; the builder guarantees the next block exists).
func (b *Block) Succs(numBlocks int) []int {
	if len(b.Instrs) == 0 {
		if b.ID+1 < numBlocks {
			return []int{b.ID + 1}
		}
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	switch last.Op {
	case Br:
		return []int{last.Target}
	case BrTrue, BrFalse:
		if b.ID+1 < numBlocks {
			return []int{last.Target, b.ID + 1}
		}
		return []int{last.Target}
	case Halt:
		return nil
	default:
		if b.ID+1 < numBlocks {
			return []int{b.ID + 1}
		}
		return nil
	}
}

// ArrayInfo describes a named array: its element type and the registers
// holding its dimension sizes (computed in the entry block).
type ArrayInfo struct {
	Type source.Type
	// DimRegs hold each dimension's size at run time.
	DimRegs []int
	// StaticLen, when non-zero, fixes the total element count at compile
	// time (used for the spill area, whose size is known after register
	// allocation and which must not depend on any register).
	StaticLen int
}

// Func is a whole lowered program.
type Func struct {
	Blocks  []*Block
	NumRegs int
	// ScalarRegs maps source scalar names to their home register; the
	// simulator seeds them from the environment before execution and
	// writes them back at halt.
	ScalarRegs map[string]int
	// RegTypes records each virtual register's value type.
	RegTypes []source.Type
	Arrays   map[string]*ArrayInfo
	// NumLoops counts loops (loop IDs are 1-based).
	NumLoops int
}

// NewReg allocates a fresh virtual register of the given type.
func (f *Func) NewReg(t source.Type) int {
	f.RegTypes = append(f.RegTypes, t)
	f.NumRegs++
	return f.NumRegs - 1
}

// NewBlock appends a fresh basic block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Dump renders the whole function.
func (f *Func) Dump() string {
	var sb strings.Builder
	for _, b := range f.Blocks {
		tag := ""
		if b.IsLoopBody {
			tag = fmt.Sprintf("  ; loop %d body", b.LoopID)
		}
		fmt.Fprintf(&sb, "b%d:%s\n", b.ID, tag)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	return sb.String()
}

// InstrCount returns the total instruction count.
func (f *Func) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}
