// Package source implements the mini-C language front end used by the
// source-level compiler: a lexer, a recursive-descent parser, the abstract
// syntax tree (AST) that every transformation operates on, and a pretty
// printer that turns transformed ASTs back into readable source text.
//
// The language is the loop-kernel subset of C that the paper's benchmarks
// (Livermore, Linpack, NAS, Stone) are written in: int/float/bool scalars,
// one- and two-dimensional arrays, assignments (including the compound
// forms += -= *= /=), if/else, C-style for loops, while loops, break and
// continue, and a small set of math intrinsics. Two extensions support the
// paper's output notation: `par { s1; s2; }` groups statements that the
// scheduler has proven independent (rendered `s1; || s2;` in paper style),
// and array indices may be written either `A[i][j]` or `A[i, j]`.
package source

import "fmt"

// TokenKind enumerates the lexical token classes of mini-C.
type TokenKind int

// Token kinds.
const (
	EOF TokenKind = iota
	IDENT
	INTLIT
	FLOATLIT

	// Keywords.
	KwInt
	KwFloat
	KwBool
	KwIf
	KwElse
	KwFor
	KwWhile
	KwBreak
	KwContinue
	KwTrue
	KwFalse
	KwPar

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	ASSIGN   // =
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	PLUSPLUS // ++
	MINUSMIN // --
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	EQ       // ==
	NE       // !=
	ANDAND   // &&
	OROR     // ||
	NOT      // !
	QUESTION // ?
	COLON    // :
)

var tokenNames = map[TokenKind]string{
	EOF:      "end of input",
	IDENT:    "identifier",
	INTLIT:   "integer literal",
	FLOATLIT: "float literal",
	KwInt:    "int", KwFloat: "float", KwBool: "bool",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while",
	KwBreak: "break", KwContinue: "continue",
	KwTrue: "true", KwFalse: "false", KwPar: "par",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", SEMI: ";", COMMA: ",",
	ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PLUSPLUS: "++", MINUSMIN: "--",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!=",
	ANDAND: "&&", OROR: "||", NOT: "!", QUESTION: "?", COLON: ":",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"int":      KwInt,
	"float":    KwFloat,
	"double":   KwFloat, // alias: benchmark sources use double
	"bool":     KwBool,
	"if":       KwIf,
	"else":     KwElse,
	"for":      KwFor,
	"while":    KwWhile,
	"break":    KwBreak,
	"continue": KwContinue,
	"true":     KwTrue,
	"false":    KwFalse,
	"par":      KwPar,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}
