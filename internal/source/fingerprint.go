package source

import (
	"crypto/sha256"
	"sync"
)

// fpMemo caches fingerprints by AST identity. Programs are treated as
// immutable once built (parsing and the SLMS transform both construct
// fresh ASTs), so a pointer is a stable identity. The set of distinct
// programs in a process is small — kernels plus their transformed
// variants — so the memo is not a leak concern.
var fpMemo sync.Map // *Program -> [sha256.Size]byte

// Fingerprint returns a content hash of the program: the sha256 of its
// printed (round-trip) source text, memoized per AST. Two programs with
// the same fingerprint print identically, so every downstream stage
// (compilation, transformation, simulation) treats them the same. The
// program must not be mutated after fingerprinting.
func Fingerprint(p *Program) [sha256.Size]byte {
	if v, ok := fpMemo.Load(p); ok {
		return v.([sha256.Size]byte)
	}
	h := sha256.Sum256([]byte(Print(p)))
	fpMemo.Store(p, h)
	return h
}
