package source

// Type is the static type of a mini-C expression or variable.
type Type int

// Value types of the language.
const (
	TUnknown Type = iota
	TInt
	TFloat
	TBool
)

// String renders the type using the language keywords.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	default:
		return "unknown"
	}
}

// Op enumerates the unary and binary operators.
type Op int

// Operators.
const (
	OpNone Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
	OpNot // unary
	OpNeg // unary
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "==", OpNE: "!=",
	OpAnd: "&&", OpOr: "||", OpNot: "!", OpNeg: "-",
}

// String renders the operator symbol.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a bool from two
// numeric operands.
func (o Op) IsComparison() bool {
	switch o {
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		return true
	}
	return false
}

// IsArith reports whether the operator is an arithmetic operator.
func (o Op) IsArith() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return true
	}
	return false
}

// AssignOp is the operator of an assignment statement.
type AssignOp int

// Assignment operators.
const (
	AEq  AssignOp = iota // =
	AAdd                 // +=
	ASub                 // -=
	AMul                 // *=
	ADiv                 // /=
)

// String renders the assignment operator symbol.
func (a AssignOp) String() string {
	switch a {
	case AAdd:
		return "+="
	case ASub:
		return "-="
	case AMul:
		return "*="
	case ADiv:
		return "/="
	default:
		return "="
	}
}

// BinOp returns the binary operator corresponding to a compound
// assignment (AAdd -> OpAdd, ...). It returns OpNone for plain `=`.
func (a AssignOp) BinOp() Op {
	switch a {
	case AAdd:
		return OpAdd
	case ASub:
		return OpSub
	case AMul:
		return OpMul
	case ADiv:
		return OpDiv
	default:
		return OpNone
	}
}

// Node is any AST node.
type Node interface {
	Pos() Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ---------------------------------------------------------------- exprs

// IntLit is an integer literal.
type IntLit struct {
	P     Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	P     Pos
	Value float64
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	P     Pos
	Value bool
}

// VarRef is a reference to a scalar variable.
type VarRef struct {
	P    Pos
	Name string
}

// IndexExpr is an array element reference A[i] or A[i][j] (equivalently
// A[i, j]).
type IndexExpr struct {
	P       Pos
	Name    string
	Indices []Expr
}

// Unary is a unary operator application (!x or -x).
type Unary struct {
	P  Pos
	Op Op
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	P    Pos
	Op   Op
	X, Y Expr
}

// CondExpr is the C ternary operator c ? a : b.
type CondExpr struct {
	P          Pos
	Cond, A, B Expr
}

// Call is an intrinsic function call (abs, sqrt, min, max, exp, sign, mod).
type Call struct {
	P    Pos
	Name string
	Args []Expr
}

// Pos implementations.
func (e *IntLit) Pos() Pos    { return e.P }
func (e *FloatLit) Pos() Pos  { return e.P }
func (e *BoolLit) Pos() Pos   { return e.P }
func (e *VarRef) Pos() Pos    { return e.P }
func (e *IndexExpr) Pos() Pos { return e.P }
func (e *Unary) Pos() Pos     { return e.P }
func (e *Binary) Pos() Pos    { return e.P }
func (e *CondExpr) Pos() Pos  { return e.P }
func (e *Call) Pos() Pos      { return e.P }

func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*BoolLit) exprNode()   {}
func (*VarRef) exprNode()    {}
func (*IndexExpr) exprNode() {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*CondExpr) exprNode()  {}
func (*Call) exprNode()      {}

// ---------------------------------------------------------------- stmts

// Decl declares a scalar (`float x;`, `int n = 100;`) or an array
// (`float A[100];`, `float X[64][64];`). Array dimensions are expressions
// evaluated at elaboration time (VLA-style), which the transformations use
// for compiler-introduced temporary arrays.
type Decl struct {
	P    Pos
	Type Type
	Name string
	Dims []Expr // empty for scalars
	Init Expr   // optional initializer for scalars
}

// Assign is an assignment statement, possibly compound (`+=` etc).
type Assign struct {
	P   Pos
	LHS Expr // *VarRef or *IndexExpr
	Op  AssignOp
	RHS Expr
}

// If is an if/else statement. Else may be nil.
type If struct {
	P    Pos
	Cond Expr
	Then *Block
	Else *Block
}

// For is a C-style for loop. Init and Post may be nil.
type For struct {
	P    Pos
	Init Stmt // *Assign or *Decl
	Cond Expr
	Post Stmt // *Assign
	Body *Block
}

// While is a while loop.
type While struct {
	P    Pos
	Cond Expr
	Body *Block
}

// Block is a `{ ... }` statement sequence.
type Block struct {
	P     Pos
	Stmts []Stmt
}

// Par is a set of statements proven independent by the scheduler; it is
// printed as `s1; || s2;` in paper style. Sequential execution of the
// members is always a valid elaboration.
type Par struct {
	P     Pos
	Stmts []Stmt
}

// Break exits the innermost loop.
type Break struct{ P Pos }

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{ P Pos }

// ExprStmt evaluates an expression for effect (intrinsic calls used as
// statements, modelling the paper's opaque function-call MIs).
type ExprStmt struct {
	P Pos
	X Expr
}

// Pos implementations.
func (s *Decl) Pos() Pos     { return s.P }
func (s *Assign) Pos() Pos   { return s.P }
func (s *If) Pos() Pos       { return s.P }
func (s *For) Pos() Pos      { return s.P }
func (s *While) Pos() Pos    { return s.P }
func (s *Block) Pos() Pos    { return s.P }
func (s *Par) Pos() Pos      { return s.P }
func (s *Break) Pos() Pos    { return s.P }
func (s *Continue) Pos() Pos { return s.P }
func (s *ExprStmt) Pos() Pos { return s.P }

func (*Decl) stmtNode()     {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*While) stmtNode()    {}
func (*Block) stmtNode()    {}
func (*Par) stmtNode()      {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}

// Program is a parsed compilation unit: a flat sequence of declarations
// and statements (the model the Tiny tool used — programs are kernels).
type Program struct {
	Stmts []Stmt
}

// Block returns the program body as a Block.
func (p *Program) Block() *Block { return &Block{Stmts: p.Stmts} }

// ---------------------------------------------------------------- clone

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *e
		return &c
	case *FloatLit:
		c := *e
		return &c
	case *BoolLit:
		c := *e
		return &c
	case *VarRef:
		c := *e
		return &c
	case *IndexExpr:
		c := &IndexExpr{P: e.P, Name: e.Name}
		for _, ix := range e.Indices {
			c.Indices = append(c.Indices, CloneExpr(ix))
		}
		return c
	case *Unary:
		return &Unary{P: e.P, Op: e.Op, X: CloneExpr(e.X)}
	case *Binary:
		return &Binary{P: e.P, Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *CondExpr:
		return &CondExpr{P: e.P, Cond: CloneExpr(e.Cond), A: CloneExpr(e.A), B: CloneExpr(e.B)}
	case *Call:
		c := &Call{P: e.P, Name: e.Name}
		for _, a := range e.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	}
	panic("source: CloneExpr: unknown expression type")
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *Decl:
		c := &Decl{P: s.P, Type: s.Type, Name: s.Name, Init: CloneExpr(s.Init)}
		for _, d := range s.Dims {
			c.Dims = append(c.Dims, CloneExpr(d))
		}
		return c
	case *Assign:
		return &Assign{P: s.P, LHS: CloneExpr(s.LHS), Op: s.Op, RHS: CloneExpr(s.RHS)}
	case *If:
		return &If{P: s.P, Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Else: CloneBlock(s.Else)}
	case *For:
		return &For{P: s.P, Init: CloneStmt(s.Init), Cond: CloneExpr(s.Cond), Post: CloneStmt(s.Post), Body: CloneBlock(s.Body)}
	case *While:
		return &While{P: s.P, Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body)}
	case *Block:
		return CloneBlock(s)
	case *Par:
		c := &Par{P: s.P}
		for _, st := range s.Stmts {
			c.Stmts = append(c.Stmts, CloneStmt(st))
		}
		return c
	case *Break:
		c := *s
		return &c
	case *Continue:
		c := *s
		return &c
	case *ExprStmt:
		return &ExprStmt{P: s.P, X: CloneExpr(s.X)}
	}
	panic("source: CloneStmt: unknown statement type")
}

// CloneBlock returns a deep copy of b (nil-safe).
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	c := &Block{P: b.P}
	for _, s := range b.Stmts {
		c.Stmts = append(c.Stmts, CloneStmt(s))
	}
	return c
}

// CloneProgram returns a deep copy of p.
func CloneProgram(p *Program) *Program {
	c := &Program{}
	for _, s := range p.Stmts {
		c.Stmts = append(c.Stmts, CloneStmt(s))
	}
	return c
}

// ---------------------------------------------------------------- walk

// WalkExprs calls f on every expression nested in e (including e itself),
// pre-order. f returning false prunes the subtree.
func WalkExprs(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch e := e.(type) {
	case *IndexExpr:
		for _, ix := range e.Indices {
			WalkExprs(ix, f)
		}
	case *Unary:
		WalkExprs(e.X, f)
	case *Binary:
		WalkExprs(e.X, f)
		WalkExprs(e.Y, f)
	case *CondExpr:
		WalkExprs(e.Cond, f)
		WalkExprs(e.A, f)
		WalkExprs(e.B, f)
	case *Call:
		for _, a := range e.Args {
			WalkExprs(a, f)
		}
	}
}

// WalkStmt calls f on every statement nested in s (including s itself),
// pre-order. f returning false prunes the subtree.
func WalkStmt(s Stmt, f func(Stmt) bool) {
	if s == nil || !f(s) {
		return
	}
	switch s := s.(type) {
	case *If:
		WalkStmt(s.Then, f)
		if s.Else != nil {
			WalkStmt(s.Else, f)
		}
	case *For:
		if s.Init != nil {
			WalkStmt(s.Init, f)
		}
		if s.Post != nil {
			WalkStmt(s.Post, f)
		}
		WalkStmt(s.Body, f)
	case *While:
		WalkStmt(s.Body, f)
	case *Block:
		if s == nil {
			return
		}
		for _, st := range s.Stmts {
			WalkStmt(st, f)
		}
	case *Par:
		for _, st := range s.Stmts {
			WalkStmt(st, f)
		}
	}
}

// StmtExprs calls f on every expression directly contained in s (not
// descending into nested statements).
func StmtExprs(s Stmt, f func(Expr) bool) {
	switch s := s.(type) {
	case *Decl:
		for _, d := range s.Dims {
			WalkExprs(d, f)
		}
		WalkExprs(s.Init, f)
	case *Assign:
		WalkExprs(s.LHS, f)
		WalkExprs(s.RHS, f)
	case *If:
		WalkExprs(s.Cond, f)
	case *For:
		WalkExprs(s.Cond, f)
	case *While:
		WalkExprs(s.Cond, f)
	case *ExprStmt:
		WalkExprs(s.X, f)
	}
}

// MapExpr rewrites e bottom-up: f receives each (already rewritten) node
// and returns its replacement.
func MapExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *IndexExpr:
		n := &IndexExpr{P: t.P, Name: t.Name}
		for _, ix := range t.Indices {
			n.Indices = append(n.Indices, MapExpr(ix, f))
		}
		return f(n)
	case *Unary:
		return f(&Unary{P: t.P, Op: t.Op, X: MapExpr(t.X, f)})
	case *Binary:
		return f(&Binary{P: t.P, Op: t.Op, X: MapExpr(t.X, f), Y: MapExpr(t.Y, f)})
	case *CondExpr:
		return f(&CondExpr{P: t.P, Cond: MapExpr(t.Cond, f), A: MapExpr(t.A, f), B: MapExpr(t.B, f)})
	case *Call:
		n := &Call{P: t.P, Name: t.Name}
		for _, a := range t.Args {
			n.Args = append(n.Args, MapExpr(a, f))
		}
		return f(n)
	default:
		return f(CloneExpr(e))
	}
}

// MapStmtExprs rewrites every expression directly contained in s using
// MapExpr, in place.
func MapStmtExprs(s Stmt, f func(Expr) Expr) {
	switch s := s.(type) {
	case *Decl:
		for i := range s.Dims {
			s.Dims[i] = MapExpr(s.Dims[i], f)
		}
		if s.Init != nil {
			s.Init = MapExpr(s.Init, f)
		}
	case *Assign:
		s.LHS = MapExpr(s.LHS, f)
		s.RHS = MapExpr(s.RHS, f)
	case *If:
		s.Cond = MapExpr(s.Cond, f)
		if s.Then != nil {
			for _, st := range s.Then.Stmts {
				MapStmtExprs(st, f)
			}
		}
		if s.Else != nil {
			for _, st := range s.Else.Stmts {
				MapStmtExprs(st, f)
			}
		}
	case *For:
		if s.Init != nil {
			MapStmtExprs(s.Init, f)
		}
		if s.Cond != nil {
			s.Cond = MapExpr(s.Cond, f)
		}
		if s.Post != nil {
			MapStmtExprs(s.Post, f)
		}
		for _, st := range s.Body.Stmts {
			MapStmtExprs(st, f)
		}
	case *While:
		s.Cond = MapExpr(s.Cond, f)
		for _, st := range s.Body.Stmts {
			MapStmtExprs(st, f)
		}
	case *Block:
		for _, st := range s.Stmts {
			MapStmtExprs(st, f)
		}
	case *Par:
		for _, st := range s.Stmts {
			MapStmtExprs(st, f)
		}
	case *ExprStmt:
		s.X = MapExpr(s.X, f)
	}
}

// SubstVar returns a copy of e with every reference to scalar `name`
// replaced by a clone of repl. Array names are not touched.
func SubstVar(e Expr, name string, repl Expr) Expr {
	return MapExpr(e, func(x Expr) Expr {
		if v, ok := x.(*VarRef); ok && v.Name == name {
			return CloneExpr(repl)
		}
		return x
	})
}

// SubstVarStmt replaces scalar references to `name` with repl in all
// expressions of s, in place (s should be a fresh clone).
func SubstVarStmt(s Stmt, name string, repl Expr) {
	MapStmtExprs(s, func(x Expr) Expr {
		if v, ok := x.(*VarRef); ok && v.Name == name {
			return CloneExpr(repl)
		}
		return x
	})
}

// RenameVarStmt renames scalar variable `old` to `new` in all expressions
// of s, in place. Both reads and writes are renamed; array names are not.
func RenameVarStmt(s Stmt, old, new string) {
	SubstVarStmt(s, old, &VarRef{Name: new})
}
