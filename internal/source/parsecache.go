package source

import (
	"sync"
	"sync/atomic"

	"slms/internal/obs"
)

// parseEntry is a once-filled parse-cache slot.
type parseEntry struct {
	once sync.Once
	prog *Program
	err  error
}

var parseMemo sync.Map // source text -> *parseEntry

// Parse-cache effectiveness counters, mirrored into the metrics
// registry. The bench harness reports these per-cache alongside the
// transform and compile caches (see internal/bench).
var (
	pcHits      atomic.Int64
	pcMisses    atomic.Int64
	pcHitsCtr   = obs.CounterName("source.parse.cache.hits")
	pcMissesCtr = obs.CounterName("source.parse.cache.misses")
)

// ParseCacheStats reports the parse cache's cumulative hit and miss
// counts since the last reset.
func ParseCacheStats() (hits, misses int64) {
	return pcHits.Load(), pcMisses.Load()
}

// The parse cache participates in the obs cache-reset registry so
// obs.ResetCaches clears all three caching layers (parse, transform,
// compile) as one operation.
func init() { obs.RegisterCacheReset(ResetParseCache) }

// ResetParseCache drops every cached parse and zeroes the hit/miss
// counters — the stat atomics and their mirrored registry counters
// together, so ParseCacheStats and a metrics dump never disagree after
// a reset. Outstanding ASTs stay valid; subsequent identical sources
// reparse (and mint fresh Fingerprint identities).
func ResetParseCache() {
	parseMemo.Range(func(k, _ any) bool {
		parseMemo.Delete(k)
		return true
	})
	pcHits.Store(0)
	pcMisses.Store(0)
	pcHitsCtr.Reset()
	pcMissesCtr.Reset()
}

// ParseCached parses src through a process-wide cache: identical source
// text parses once and all callers share the same immutable AST. Shared
// ASTs also share their [Fingerprint], so downstream artifact and
// transform caches hit by pointer without reprinting the program. Use
// Parse instead when the caller intends to mutate the result.
func ParseCached(src string) (*Program, error) {
	v, loaded := parseMemo.LoadOrStore(src, &parseEntry{})
	if loaded {
		pcHits.Add(1)
		pcHitsCtr.Add(1)
	} else {
		pcMisses.Add(1)
		pcMissesCtr.Add(1)
	}
	e := v.(*parseEntry)
	e.once.Do(func() { e.prog, e.err = Parse(src) })
	return e.prog, e.err
}

// MustParseCached is ParseCached for known-good sources; it panics on a
// parse error.
func MustParseCached(src string) *Program {
	p, err := ParseCached(src)
	if err != nil {
		panic(err)
	}
	return p
}
