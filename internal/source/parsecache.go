package source

import "sync"

// parseEntry is a once-filled parse-cache slot.
type parseEntry struct {
	once sync.Once
	prog *Program
	err  error
}

var parseMemo sync.Map // source text -> *parseEntry

// ParseCached parses src through a process-wide cache: identical source
// text parses once and all callers share the same immutable AST. Shared
// ASTs also share their [Fingerprint], so downstream artifact and
// transform caches hit by pointer without reprinting the program. Use
// Parse instead when the caller intends to mutate the result.
func ParseCached(src string) (*Program, error) {
	v, _ := parseMemo.LoadOrStore(src, &parseEntry{})
	e := v.(*parseEntry)
	e.once.Do(func() { e.prog, e.err = Parse(src) })
	return e.prog, e.err
}

// MustParseCached is ParseCached for known-good sources; it panics on a
// parse error.
func MustParseCached(src string) *Program {
	p, err := ParseCached(src)
	if err != nil {
		panic(err)
	}
	return p
}
