package source

import "fmt"

// Lexer turns mini-C source text into a stream of tokens. It supports //
// line comments and /* ... */ block comments.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a lexical or syntactic error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) errf(p Pos, format string, args ...any) error {
	return &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next scans and returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: p}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.off
		isFloat := false
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.off < len(l.src) && l.peek() == '.' {
			isFloat = true
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.off < len(l.src) && (l.peek() == 'e' || l.peek() == 'E') {
			// Exponent: e[+-]?digits
			save := l.off
			l.advance()
			if l.off < len(l.src) && (l.peek() == '+' || l.peek() == '-') {
				l.advance()
			}
			if l.off < len(l.src) && isDigit(l.peek()) {
				isFloat = true
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			} else {
				l.off = save // not an exponent after all
			}
		}
		text := l.src[start:l.off]
		if isFloat {
			return Token{Kind: FLOATLIT, Text: text, Pos: p}, nil
		}
		return Token{Kind: INTLIT, Text: text, Pos: p}, nil
	}

	l.advance()
	two := func(next byte, withKind, aloneKind TokenKind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: withKind, Text: tokenNames[withKind], Pos: p}, nil
		}
		return Token{Kind: aloneKind, Text: tokenNames[aloneKind], Pos: p}, nil
	}

	switch c {
	case '(':
		return Token{Kind: LPAREN, Text: "(", Pos: p}, nil
	case ')':
		return Token{Kind: RPAREN, Text: ")", Pos: p}, nil
	case '{':
		return Token{Kind: LBRACE, Text: "{", Pos: p}, nil
	case '}':
		return Token{Kind: RBRACE, Text: "}", Pos: p}, nil
	case '[':
		return Token{Kind: LBRACK, Text: "[", Pos: p}, nil
	case ']':
		return Token{Kind: RBRACK, Text: "]", Pos: p}, nil
	case ';':
		return Token{Kind: SEMI, Text: ";", Pos: p}, nil
	case ',':
		return Token{Kind: COMMA, Text: ",", Pos: p}, nil
	case '?':
		return Token{Kind: QUESTION, Text: "?", Pos: p}, nil
	case ':':
		return Token{Kind: COLON, Text: ":", Pos: p}, nil
	case '%':
		return Token{Kind: PERCENT, Text: "%", Pos: p}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: PLUSPLUS, Text: "++", Pos: p}, nil
		}
		return two('=', PLUSEQ, PLUS)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: MINUSMIN, Text: "--", Pos: p}, nil
		}
		return two('=', MINUSEQ, MINUS)
	case '*':
		return two('=', STAREQ, STAR)
	case '/':
		return two('=', SLASHEQ, SLASH)
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, NOT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: ANDAND, Text: "&&", Pos: p}, nil
		}
		return Token{}, l.errf(p, "unexpected character %q (did you mean &&?)", "&")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OROR, Text: "||", Pos: p}, nil
		}
		return Token{}, l.errf(p, "unexpected character %q (did you mean ||?)", "|")
	}
	return Token{}, l.errf(p, "unexpected character %q", string(c))
}

// Tokenize scans all of src and returns the token slice (terminated by EOF).
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
