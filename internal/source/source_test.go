package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("for (i = 0; i < n; i++) { A[i] += 2.5; } // c\n/* block */ x = y && !z;")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{
		KwFor, LPAREN, IDENT, ASSIGN, INTLIT, SEMI, IDENT, LT, IDENT, SEMI,
		IDENT, PLUSPLUS, RPAREN, LBRACE, IDENT, LBRACK, IDENT, RBRACK,
		PLUSEQ, FLOATLIT, SEMI, RBRACE,
		IDENT, ASSIGN, IDENT, ANDAND, NOT, IDENT, SEMI, EOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]TokenKind{
		"42":     INTLIT,
		"3.14":   FLOATLIT,
		"1e10":   FLOATLIT,
		"2.5e-3": FLOATLIT,
		".5":     FLOATLIT,
	}
	for src, kind := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", src, err)
		}
		if toks[0].Kind != kind || toks[0].Text != src {
			t.Errorf("Tokenize(%q) = %v %q, want %v", src, toks[0].Kind, toks[0].Text, kind)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"a & b", "a | b", "a $ b", "/* unterminated"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"int n = 100;\nfloat A[100];\nfor (i = 0; i < n; i++) {\n  A[i] = A[i - 1] + 1.0;\n}\n",
		"if (x < y) {\n  x = x + 1;\n} else {\n  y = y + 1;\n}\n",
		"while (a[i + 2] > 0) {\n  a[i] = a[i + 2];\n  i++;\n}\n",
		"par {\n  a[i] = t1;\n  t2 = a[i + 1];\n}\n",
		"x = b * c + -d / (e - f) % g;\n",
		"c = x < y && y < z || !done;\n",
		"v = p > 0 ? p : -p;\n",
		"X[k][i] = X[k][j] * 2;\n",
		"s = sqrt(abs(x) + max(a, b));\n",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out1 := Print(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\nprinted:\n%s", src, err, out1)
		}
		out2 := Print(p2)
		if out1 != out2 {
			t.Errorf("round trip not stable for %q:\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	}
}

func TestParseCommaIndices(t *testing.T) {
	// The paper writes X[k, i]; it must parse the same as X[k][i].
	p1 := MustParse("X[k, i] = 0;")
	p2 := MustParse("X[k][i] = 0;")
	if Print(p1) != Print(p2) {
		t.Errorf("comma and bracket indexing differ: %q vs %q", Print(p1), Print(p2))
	}
	ix := p1.Stmts[0].(*Assign).LHS.(*IndexExpr)
	if len(ix.Indices) != 2 {
		t.Fatalf("want 2 indices, got %d", len(ix.Indices))
	}
}

func TestParseCommaDecl(t *testing.T) {
	p := MustParse("int i, j, k;")
	b, ok := p.Stmts[0].(*Block)
	if !ok || len(b.Stmts) != 3 {
		t.Fatalf("comma decl should expand to 3 decls, got %v", Print(p))
	}
}

func TestParseForDeclInit(t *testing.T) {
	p := MustParse("for (int i = 0; i < 10; i++) { s += i; }")
	f := p.Stmts[0].(*For)
	d, ok := f.Init.(*Decl)
	if !ok || d.Name != "i" || d.Type != TInt {
		t.Fatalf("for-init decl not parsed: %#v", f.Init)
	}
}

func TestParseIncDecDesugar(t *testing.T) {
	p := MustParse("i++; j--;")
	a1 := p.Stmts[0].(*Assign)
	a2 := p.Stmts[1].(*Assign)
	if a1.Op != AAdd || a2.Op != ASub {
		t.Fatalf("++/-- not desugared: %v %v", a1.Op, a2.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"for (i = 0; i < n; i++) {",
		"x = ;",
		"if x < y { }",
		"3 = x;",
		"float A[10] = 5;",
		"x ++ y;",
		"a[i = 3;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestPaperStylePar(t *testing.T) {
	p := MustParse("par { a[i] = t1; t2 = a[i + 1]; }")
	out := PrintPaper(p)
	if !strings.Contains(out, "a[i] = t1; || t2 = a[i + 1];") {
		t.Errorf("paper style output wrong:\n%s", out)
	}
	// Default style must be re-parseable.
	out2 := Print(p)
	if _, err := Parse(out2); err != nil {
		t.Errorf("default style not parseable: %v\n%s", err, out2)
	}
}

func TestPrecedencePrinting(t *testing.T) {
	cases := []string{
		"x = (a + b) * c;",
		"x = a - (b - c);",
		"x = a / (b * c);",
		"x = -(a + b);",
		"c = !(a && b);",
		"x = a - (b + c);",
	}
	for _, src := range cases {
		p := MustParse(src)
		out := strings.TrimSpace(Print(p))
		if out != src {
			t.Errorf("Print(Parse(%q)) = %q", src, out)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustParse("for (i = 0; i < n; i++) { A[i] = A[i - 1] + x; }")
	c := CloneProgram(p)
	// Mutate the clone and check the original is untouched.
	f := c.Stmts[0].(*For)
	f.Body.Stmts[0].(*Assign).RHS = &IntLit{Value: 42}
	orig := Print(p)
	if strings.Contains(orig, "42") {
		t.Fatal("clone shares structure with original")
	}
}

func TestSubstVar(t *testing.T) {
	e, err := ParseExpr("a[i + 1] + i * 2 + b")
	if err != nil {
		t.Fatal(err)
	}
	repl, _ := ParseExpr("i + 3")
	got := ExprString(SubstVar(e, "i", repl))
	want := "a[i + 3 + 1] + (i + 3) * 2 + b"
	if got != want {
		t.Errorf("SubstVar = %q, want %q", got, want)
	}
}

func TestRenameVarStmt(t *testing.T) {
	p := MustParse("reg = A[i + 2];")
	s := CloneStmt(p.Stmts[0])
	RenameVarStmt(s, "reg", "reg1")
	if got := PrintStmt(s); got != "reg1 = A[i + 2];" {
		t.Errorf("RenameVarStmt = %q", got)
	}
	// Array names must not be renamed.
	p2 := MustParse("A = B[A + 1];")
	s2 := CloneStmt(p2.Stmts[0])
	RenameVarStmt(s2, "B", "C")
	if got := PrintStmt(s2); got != "A = B[A + 1];" {
		t.Errorf("array name renamed: %q", got)
	}
}

func TestWalkExprsCount(t *testing.T) {
	e, _ := ParseExpr("a[i + 1] * (b + c)")
	n := 0
	WalkExprs(e, func(Expr) bool { n++; return true })
	// a[i+1], i+1, i, 1, b+c (walks: mul, index, add, i, 1, add, b, c) = 8
	if n != 8 {
		t.Errorf("WalkExprs visited %d nodes, want 8", n)
	}
}

// Property: printing then reparsing any expression built from a random
// structure yields the same printed form (print∘parse is idempotent).
func TestPrintParseIdempotentQuick(t *testing.T) {
	f := func(seed int64) bool {
		e := randomExpr(newRand(seed), 3)
		s1 := ExprString(e)
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Logf("parse error on %q: %v", s1, err)
			return false
		}
		// One parse may normalize (e.g. fold -(-79) to 79); after that the
		// printed form must be a fixpoint.
		s2 := ExprString(e2)
		e3, err := ParseExpr(s2)
		if err != nil {
			t.Logf("parse error on normalized %q: %v", s2, err)
			return false
		}
		return ExprString(e3) == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Tiny deterministic linear congruential generator so the property test
// does not depend on math/rand APIs.
type lcg struct{ s uint64 }

func newRand(seed int64) *lcg { return &lcg{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

func randomExpr(r *lcg, depth int) Expr {
	if depth == 0 || r.intn(3) == 0 {
		switch r.intn(3) {
		case 0:
			return &IntLit{Value: int64(r.intn(100))}
		case 1:
			return &VarRef{Name: string(rune('a' + r.intn(5)))}
		default:
			return &IndexExpr{Name: "A", Indices: []Expr{randomExpr(r, 0)}}
		}
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpLT, OpEQ, OpAnd, OpOr}
	switch r.intn(4) {
	case 0:
		return &Unary{Op: OpNeg, X: randomExpr(r, depth-1)}
	default:
		return &Binary{Op: ops[r.intn(len(ops))], X: randomExpr(r, depth-1), Y: randomExpr(r, depth-1)}
	}
}

// Property: the lexer and parser never panic, on any byte soup — they
// either produce a program or return an error.
func TestParserNeverPanicsQuick(t *testing.T) {
	alphabet := []byte("abiAB01 ;=+-*/%<>!&|(){}[].,?:\n\tforwhileifelseintfloatboolpar")
	f := func(seed int64, n uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := newRand(seed)
		buf := make([]byte, int(n))
		for i := range buf {
			buf[i] = alphabet[r.intn(len(alphabet))]
		}
		_, _ = Parse(string(buf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Simplify never changes the value of constant integer
// expressions.
func TestSimplifyPreservesConstantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := newRand(seed)
		e := randomExpr(r, 3)
		v1, ok1 := ConstInt(e)
		v2, ok2 := ConstInt(Simplify(e))
		if ok1 != ok2 && ok1 {
			// Simplification must not lose constant-ness.
			return false
		}
		if ok1 && ok2 && v1 != v2 {
			t.Logf("Simplify changed %s: %d vs %d", ExprString(e), v1, v2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
