package source

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a full program (a sequence of declarations and statements).
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for p.cur().Kind != EOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

// MustParse parses src and panics on error. It is intended for embedding
// benchmark kernels and tests.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %q, found %s", k.String(), p.cur())
	}
	return p.next(), nil
}

func (p *Parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

// ------------------------------------------------------------ statements

func (p *Parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case KwInt, KwFloat, KwBool:
		return p.declStmt()
	case KwIf:
		return p.ifStmt()
	case KwFor:
		return p.forStmt()
	case KwWhile:
		return p.whileStmt()
	case KwPar:
		return p.parStmt()
	case LBRACE:
		return p.block()
	case KwBreak:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Break{P: t.Pos}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Continue{P: t.Pos}, nil
	case SEMI:
		p.next()
		return &Block{P: t.Pos}, nil
	case IDENT:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, p.errf("expected statement, found %s", t)
}

// declStmt parses `type name[dims] (= init)? (, name...)* ;`. A
// comma-separated list produces a Block of Decls.
func (p *Parser) declStmt() (Stmt, error) {
	t := p.next()
	var typ Type
	switch t.Kind {
	case KwInt:
		typ = TInt
	case KwFloat:
		typ = TFloat
	case KwBool:
		typ = TBool
	}
	var decls []Stmt
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := &Decl{P: t.Pos, Type: typ, Name: name.Text}
		for p.cur().Kind == LBRACK {
			p.next()
			dim, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, dim)
			for p.accept(COMMA) {
				dim2, err := p.expr()
				if err != nil {
					return nil, err
				}
				d.Dims = append(d.Dims, dim2)
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
		}
		if p.accept(ASSIGN) {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			if len(d.Dims) > 0 {
				return nil, p.errf("array %q cannot have a scalar initializer", d.Name)
			}
			d.Init = init
		}
		decls = append(decls, d)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &Block{P: t.Pos, Stmts: decls}, nil
}

// simpleStmt parses an assignment, increment/decrement, or call statement
// (no trailing semicolon).
func (p *Parser) simpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.primary()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		opTok := p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		var op AssignOp
		switch opTok.Kind {
		case PLUSEQ:
			op = AAdd
		case MINUSEQ:
			op = ASub
		case STAREQ:
			op = AMul
		case SLASHEQ:
			op = ADiv
		default:
			op = AEq
		}
		if !isLValue(lhs) {
			return nil, &Error{Pos: start, Msg: "left side of assignment must be a variable or array element"}
		}
		return &Assign{P: start, LHS: lhs, Op: op, RHS: rhs}, nil
	case PLUSPLUS, MINUSMIN:
		opTok := p.next()
		if !isLValue(lhs) {
			return nil, &Error{Pos: start, Msg: "operand of ++/-- must be a variable or array element"}
		}
		op := AAdd
		if opTok.Kind == MINUSMIN {
			op = ASub
		}
		return &Assign{P: start, LHS: lhs, Op: op, RHS: &IntLit{P: start, Value: 1}}, nil
	}
	if c, ok := lhs.(*Call); ok {
		return &ExprStmt{P: start, X: c}, nil
	}
	return nil, p.errf("expected assignment operator, found %s", p.cur())
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *VarRef, *IndexExpr:
		return true
	}
	return false
}

func (p *Parser) ifStmt() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	s := &If{P: t.Pos, Cond: cond, Then: then}
	if p.accept(KwElse) {
		els, err := p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

// stmtAsBlock parses one statement and wraps it in a Block unless it
// already is one.
func (p *Parser) stmtAsBlock() (*Block, error) {
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if b, ok := s.(*Block); ok {
		return b, nil
	}
	return &Block{P: s.Pos(), Stmts: []Stmt{s}}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	f := &For{P: t.Pos}
	if p.cur().Kind != SEMI {
		var err error
		switch p.cur().Kind {
		case KwInt, KwFloat, KwBool:
			// `for (int i = 0; ...)` — declaration initializer.
			typTok := p.next()
			var typ Type
			switch typTok.Kind {
			case KwInt:
				typ = TInt
			case KwFloat:
				typ = TFloat
			default:
				typ = TBool
			}
			name, err2 := p.expect(IDENT)
			if err2 != nil {
				return nil, err2
			}
			if _, err2 := p.expect(ASSIGN); err2 != nil {
				return nil, err2
			}
			init, err2 := p.expr()
			if err2 != nil {
				return nil, err2
			}
			f.Init = &Decl{P: typTok.Pos, Type: typ, Name: name.Text, Init: init}
		default:
			f.Init, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.cur().Kind != SEMI {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if p.cur().Kind != RPAREN {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &While{P: t.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parStmt() (Stmt, error) {
	t := p.next() // par
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	s := &Par{P: t.Pos}
	for p.cur().Kind != RBRACE {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, st)
	}
	p.next() // }
	return s, nil
}

func (p *Parser) block() (*Block, error) {
	t, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{P: t.Pos}
	for p.cur().Kind != RBRACE {
		if p.cur().Kind == EOF {
			return nil, p.errf("unexpected end of input inside block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

// ------------------------------------------------------------ expressions

func (p *Parser) expr() (Expr, error) { return p.ternary() }

func (p *Parser) ternary() (Expr, error) {
	c, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if !p.accept(QUESTION) {
		return c, nil
	}
	a, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	b, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{P: c.Pos(), Cond: c, A: a, B: b}, nil
}

func (p *Parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OROR {
		t := p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: t.Pos, Op: OpOr, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) andExpr() (Expr, error) {
	x, err := p.eqExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == ANDAND {
		t := p.next()
		y, err := p.eqExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: t.Pos, Op: OpAnd, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) eqExpr() (Expr, error) {
	x, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == EQ || p.cur().Kind == NE {
		t := p.next()
		op := OpEQ
		if t.Kind == NE {
			op = OpNE
		}
		y, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: t.Pos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) relExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.cur().Kind {
		case LT:
			op = OpLT
		case LE:
			op = OpLE
		case GT:
			op = OpGT
		case GE:
			op = OpGE
		default:
			return x, nil
		}
		t := p.next()
		y, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *Parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		t := p.next()
		op := OpAdd
		if t.Kind == MINUS {
			op = OpSub
		}
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: t.Pos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) mulExpr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.cur().Kind {
		case STAR:
			op = OpMul
		case SLASH:
			op = OpDiv
		case PERCENT:
			op = OpMod
		default:
			return x, nil
		}
		t := p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *Parser) unary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case MINUS:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals immediately: -3 is a literal.
		switch lit := x.(type) {
		case *IntLit:
			return &IntLit{P: t.Pos, Value: -lit.Value}, nil
		case *FloatLit:
			return &FloatLit{P: t.Pos, Value: -lit.Value}, nil
		}
		return &Unary{P: t.Pos, Op: OpNeg, X: x}, nil
	case NOT:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{P: t.Pos, Op: OpNot, X: x}, nil
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "invalid integer literal " + t.Text}
		}
		return &IntLit{P: t.Pos, Value: v}, nil
	case FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: "invalid float literal " + t.Text}
		}
		return &FloatLit{P: t.Pos, Value: v}, nil
	case KwTrue:
		p.next()
		return &BoolLit{P: t.Pos, Value: true}, nil
	case KwFalse:
		p.next()
		return &BoolLit{P: t.Pos, Value: false}, nil
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		if p.cur().Kind == LPAREN {
			p.next()
			c := &Call{P: t.Pos, Name: t.Text}
			if p.cur().Kind != RPAREN {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					c.Args = append(c.Args, a)
					if !p.accept(COMMA) {
						break
					}
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return c, nil
		}
		if p.cur().Kind == LBRACK {
			ix := &IndexExpr{P: t.Pos, Name: t.Text}
			for p.cur().Kind == LBRACK {
				p.next()
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				ix.Indices = append(ix.Indices, e)
				for p.accept(COMMA) {
					e2, err := p.expr()
					if err != nil {
						return nil, err
					}
					ix.Indices = append(ix.Indices, e2)
				}
				if _, err := p.expect(RBRACK); err != nil {
					return nil, err
				}
			}
			return ix, nil
		}
		return &VarRef{P: t.Pos, Name: t.Text}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}
