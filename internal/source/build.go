package source

// Constructors and a light algebraic simplifier used by the
// transformations. The simplifier is what keeps transformed programs
// readable: shifting A[i + 1] by two iterations yields A[i + 3] rather
// than A[i + 1 + 2], matching the listings in the paper.

// Int returns an integer literal.
func Int(v int64) *IntLit { return &IntLit{Value: v} }

// Float returns a float literal.
func Float(v float64) *FloatLit { return &FloatLit{Value: v} }

// Bool returns a bool literal.
func Bool(v bool) *BoolLit { return &BoolLit{Value: v} }

// Var returns a scalar variable reference.
func Var(name string) *VarRef { return &VarRef{Name: name} }

// Index returns an array element reference.
func Index(name string, idx ...Expr) *IndexExpr { return &IndexExpr{Name: name, Indices: idx} }

// Bin returns a simplified binary expression.
func Bin(op Op, x, y Expr) Expr { return Simplify(&Binary{Op: op, X: x, Y: y}) }

// Add returns x + y, simplified.
func Add(x, y Expr) Expr { return Bin(OpAdd, x, y) }

// Sub returns x - y, simplified.
func Sub(x, y Expr) Expr { return Bin(OpSub, x, y) }

// Mul returns x * y, simplified.
func Mul(x, y Expr) Expr { return Bin(OpMul, x, y) }

// AddConst returns e + k, simplified (k may be negative or zero).
func AddConst(e Expr, k int64) Expr { return Add(CloneExpr(e), Int(k)) }

// Not returns the logical negation of e, simplifying double negation.
func Not(e Expr) Expr {
	if u, ok := e.(*Unary); ok && u.Op == OpNot {
		return CloneExpr(u.X)
	}
	if b, ok := e.(*BoolLit); ok {
		return Bool(!b.Value)
	}
	return &Unary{Op: OpNot, X: CloneExpr(e)}
}

// ConstInt reports whether e is an integer constant and returns its value.
func ConstInt(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Value, true
	case *Unary:
		if e.Op == OpNeg {
			if v, ok := ConstInt(e.X); ok {
				return -v, true
			}
		}
	case *Binary:
		x, okx := ConstInt(e.X)
		y, oky := ConstInt(e.Y)
		if okx && oky {
			switch e.Op {
			case OpAdd:
				return x + y, true
			case OpSub:
				return x - y, true
			case OpMul:
				return x * y, true
			case OpDiv:
				if y != 0 {
					return x / y, true
				}
			case OpMod:
				if y != 0 {
					return x % y, true
				}
			}
		}
	}
	return 0, false
}

// Simplify performs bottom-up constant folding and identity elimination
// on integer expressions. It never changes semantics: float expressions
// are folded only for exact literal arithmetic on + - *.
func Simplify(e Expr) Expr {
	return MapExpr(e, simplifyNode)
}

func simplifyNode(e Expr) Expr {
	b, ok := e.(*Binary)
	if !ok {
		if u, isU := e.(*Unary); isU && u.Op == OpNeg {
			if v, isC := ConstInt(u.X); isC {
				return Int(-v)
			}
		}
		return e
	}
	xi, xIsInt := b.X.(*IntLit)
	yi, yIsInt := b.Y.(*IntLit)
	if xIsInt && yIsInt {
		if v, ok := ConstInt(b); ok {
			return Int(v)
		}
	}
	switch b.Op {
	case OpAdd:
		if xIsInt && xi.Value == 0 {
			return b.Y
		}
		if yIsInt && yi.Value == 0 {
			return b.X
		}
		// (x + c1) + c2 -> x + (c1+c2);  (x - c1) + c2 -> x + (c2-c1)
		if yIsInt {
			if inner, okb := b.X.(*Binary); okb {
				if c1, okc := inner.Y.(*IntLit); okc {
					switch inner.Op {
					case OpAdd:
						return reAdd(inner.X, c1.Value+yi.Value)
					case OpSub:
						return reAdd(inner.X, yi.Value-c1.Value)
					}
				}
			}
			if yi.Value < 0 {
				return &Binary{Op: OpSub, X: b.X, Y: Int(-yi.Value)}
			}
		}
		// c + x -> x + c (canonical order keeps folding effective)
		if xIsInt && !yIsInt {
			return simplifyNode(&Binary{Op: OpAdd, X: b.Y, Y: b.X})
		}
	case OpSub:
		if yIsInt && yi.Value == 0 {
			return b.X
		}
		if yIsInt {
			if inner, okb := b.X.(*Binary); okb {
				if c1, okc := inner.Y.(*IntLit); okc {
					switch inner.Op {
					case OpAdd:
						return reAdd(inner.X, c1.Value-yi.Value)
					case OpSub:
						return reAdd(inner.X, -c1.Value-yi.Value)
					}
				}
			}
			if yi.Value < 0 {
				return simplifyNode(&Binary{Op: OpAdd, X: b.X, Y: Int(-yi.Value)})
			}
		}
		// x - x -> 0 for plain variable references.
		if xv, okx := b.X.(*VarRef); okx {
			if yv, oky := b.Y.(*VarRef); oky && xv.Name == yv.Name {
				return Int(0)
			}
		}
	case OpMul:
		if xIsInt {
			switch xi.Value {
			case 0:
				if sideEffectFree(b.Y) {
					return Int(0)
				}
			case 1:
				return b.Y
			}
		}
		if yIsInt {
			switch yi.Value {
			case 0:
				if sideEffectFree(b.X) {
					return Int(0)
				}
			case 1:
				return b.X
			}
		}
	case OpDiv:
		if yIsInt && yi.Value == 1 {
			return b.X
		}
	}
	return b
}

// reAdd builds x + k (or x - |k|, or just x) in canonical form.
func reAdd(x Expr, k int64) Expr {
	switch {
	case k == 0:
		return x
	case k > 0:
		return &Binary{Op: OpAdd, X: x, Y: Int(k)}
	default:
		return &Binary{Op: OpSub, X: x, Y: Int(-k)}
	}
}

// sideEffectFree reports whether evaluating e has no side effects.
// Mini-C expressions are always side-effect free, but guard anyway so a
// future extension cannot silently break the simplifier.
func sideEffectFree(e Expr) bool { return e != nil }

// ShiftVar returns a copy of e with scalar `name` replaced by
// `name + k` (simplified), the core reindexing step of modulo scheduling:
// MI_k of iteration i+d reads A[(i+d)+c].
func ShiftVar(e Expr, name string, k int64) Expr {
	if k == 0 {
		return CloneExpr(e)
	}
	return Simplify(SubstVar(e, name, reAdd(Var(name), k)))
}

// ShiftVarStmt returns a deep copy of s with scalar `name` shifted by k.
func ShiftVarStmt(s Stmt, name string, k int64) Stmt {
	c := CloneStmt(s)
	if k == 0 {
		return c
	}
	SubstVarStmt(c, name, reAdd(Var(name), k))
	MapStmtExprs(c, func(e Expr) Expr { return Simplify(e) })
	return c
}
