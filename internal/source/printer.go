package source

import (
	"fmt"
	"strconv"
	"strings"
)

// PrintStyle selects how Par groups are rendered.
type PrintStyle int

const (
	// StyleParseable renders Par groups as `par { s1; s2; }`, which the
	// parser accepts again (round-trip safe).
	StyleParseable PrintStyle = iota
	// StylePaper renders Par groups as `s1; || s2;` like the listings in
	// the paper. Not re-parseable.
	StylePaper
)

// Printer pretty-prints ASTs back to mini-C source text.
type Printer struct {
	Style  PrintStyle
	Indent string // indentation unit, default two spaces

	b     strings.Builder
	depth int
}

// Print renders a whole program with the default printer.
func Print(p *Program) string {
	var pr Printer
	return pr.Program(p)
}

// PrintPaper renders a whole program in paper style.
func PrintPaper(p *Program) string {
	pr := Printer{Style: StylePaper}
	return pr.Program(p)
}

// PrintStmt renders one statement with the default printer.
func PrintStmt(s Stmt) string {
	var pr Printer
	pr.stmt(s)
	return strings.TrimRight(pr.b.String(), "\n")
}

// ExprString renders one expression.
func ExprString(e Expr) string {
	var pr Printer
	return pr.expr(e, 0)
}

// Program renders a whole program.
func (pr *Printer) Program(p *Program) string {
	pr.b.Reset()
	pr.depth = 0
	for _, s := range p.Stmts {
		pr.stmt(s)
	}
	return pr.b.String()
}

func (pr *Printer) indentUnit() string {
	if pr.Indent == "" {
		return "  "
	}
	return pr.Indent
}

func (pr *Printer) line(s string) {
	pr.b.WriteString(strings.Repeat(pr.indentUnit(), pr.depth))
	pr.b.WriteString(s)
	pr.b.WriteString("\n")
}

func (pr *Printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Decl:
		pr.line(pr.declString(s) + ";")
	case *Assign:
		pr.line(pr.assignString(s) + ";")
	case *If:
		pr.ifStmt(s)
	case *For:
		head := fmt.Sprintf("for (%s; %s; %s) {", pr.simpleString(s.Init), pr.optExpr(s.Cond), pr.simpleString(s.Post))
		pr.line(head)
		pr.depth++
		for _, st := range s.Body.Stmts {
			pr.stmt(st)
		}
		pr.depth--
		pr.line("}")
	case *While:
		pr.line(fmt.Sprintf("while (%s) {", pr.expr(s.Cond, 0)))
		pr.depth++
		for _, st := range s.Body.Stmts {
			pr.stmt(st)
		}
		pr.depth--
		pr.line("}")
	case *Block:
		if len(s.Stmts) == 0 {
			pr.line(";")
			return
		}
		pr.line("{")
		pr.depth++
		for _, st := range s.Stmts {
			pr.stmt(st)
		}
		pr.depth--
		pr.line("}")
	case *Par:
		pr.parStmt(s)
	case *Break:
		pr.line("break;")
	case *Continue:
		pr.line("continue;")
	case *ExprStmt:
		pr.line(pr.expr(s.X, 0) + ";")
	default:
		pr.line(fmt.Sprintf("/* unknown stmt %T */", s))
	}
}

func (pr *Printer) ifStmt(s *If) {
	// Single-statement then/else bodies without an else-branch are printed
	// inline to match the paper's predicated-MI style.
	if s.Else == nil && len(s.Then.Stmts) == 1 {
		if inner := pr.inlineStmt(s.Then.Stmts[0]); inner != "" {
			pr.line(fmt.Sprintf("if (%s) %s", pr.expr(s.Cond, 0), inner))
			return
		}
	}
	pr.line(fmt.Sprintf("if (%s) {", pr.expr(s.Cond, 0)))
	pr.depth++
	for _, st := range s.Then.Stmts {
		pr.stmt(st)
	}
	pr.depth--
	if s.Else != nil {
		pr.line("} else {")
		pr.depth++
		for _, st := range s.Else.Stmts {
			pr.stmt(st)
		}
		pr.depth--
	}
	pr.line("}")
}

// inlineStmt renders a simple statement on one line (with its semicolon),
// or returns "" if the statement is not simple.
func (pr *Printer) inlineStmt(s Stmt) string {
	switch s := s.(type) {
	case *Assign:
		return pr.assignString(s) + ";"
	case *Break:
		return "break;"
	case *Continue:
		return "continue;"
	case *ExprStmt:
		return pr.expr(s.X, 0) + ";"
	case *If:
		if s.Else == nil && len(s.Then.Stmts) == 1 {
			if inner := pr.inlineStmt(s.Then.Stmts[0]); inner != "" {
				return fmt.Sprintf("if (%s) %s", pr.expr(s.Cond, 0), inner)
			}
		}
	}
	return ""
}

func (pr *Printer) parStmt(s *Par) {
	if pr.Style == StylePaper {
		var parts []string
		simple := true
		for _, st := range s.Stmts {
			in := pr.inlineStmt(st)
			if in == "" {
				simple = false
				break
			}
			parts = append(parts, in)
		}
		if simple {
			pr.line(strings.Join(parts, " || "))
			return
		}
	}
	pr.line("par {")
	pr.depth++
	for _, st := range s.Stmts {
		pr.stmt(st)
	}
	pr.depth--
	pr.line("}")
}

func (pr *Printer) declString(d *Decl) string {
	s := d.Type.String() + " " + d.Name
	for _, dim := range d.Dims {
		s += "[" + pr.expr(dim, 0) + "]"
	}
	if d.Init != nil {
		s += " = " + pr.expr(d.Init, 0)
	}
	return s
}

func (pr *Printer) assignString(a *Assign) string {
	// Render `i += 1` as `i++` (and `-= 1` as `i--`) for readability.
	if lit, ok := a.RHS.(*IntLit); ok && lit.Value == 1 {
		if a.Op == AAdd {
			return pr.expr(a.LHS, 0) + "++"
		}
		if a.Op == ASub {
			return pr.expr(a.LHS, 0) + "--"
		}
	}
	return fmt.Sprintf("%s %s %s", pr.expr(a.LHS, 0), a.Op, pr.expr(a.RHS, 0))
}

// simpleString renders a statement without its semicolon for for-headers.
func (pr *Printer) simpleString(s Stmt) string {
	switch s := s.(type) {
	case nil:
		return ""
	case *Assign:
		return pr.assignString(s)
	case *Decl:
		return pr.declString(s)
	}
	return "/*?*/"
}

func (pr *Printer) optExpr(e Expr) string {
	if e == nil {
		return ""
	}
	return pr.expr(e, 0)
}

// Operator precedence levels for minimal parenthesization.
func prec(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEQ, OpNE:
		return 3
	case OpLT, OpLE, OpGT, OpGE:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv, OpMod:
		return 6
	case OpNot, OpNeg:
		return 7
	}
	return 8
}

func (pr *Printer) expr(e Expr, parent int) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return strconv.FormatInt(e.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(e.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *VarRef:
		return e.Name
	case *IndexExpr:
		s := e.Name
		for _, ix := range e.Indices {
			s += "[" + pr.expr(ix, 0) + "]"
		}
		return s
	case *Unary:
		p := prec(e.Op)
		inner := pr.expr(e.X, p)
		if e.Op == OpNeg && strings.HasPrefix(inner, "-") {
			inner = "(" + inner + ")" // avoid `--x` which lexes as decrement
		}
		s := e.Op.String() + inner
		if p < parent {
			return "(" + s + ")"
		}
		return s
	case *Binary:
		p := prec(e.Op)
		// Right operand of - / % needs the next level to keep a-b-c correct.
		rp := p
		if e.Op == OpSub || e.Op == OpDiv || e.Op == OpMod {
			rp = p + 1
		}
		s := pr.expr(e.X, p) + " " + e.Op.String() + " " + pr.expr(e.Y, rp)
		if p < parent {
			return "(" + s + ")"
		}
		return s
	case *CondExpr:
		s := fmt.Sprintf("%s ? %s : %s", pr.expr(e.Cond, 1), pr.expr(e.A, 0), pr.expr(e.B, 0))
		if parent > 0 {
			return "(" + s + ")"
		}
		return s
	case *Call:
		var args []string
		for _, a := range e.Args {
			args = append(args, pr.expr(a, 0))
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("/*?%T*/", e)
}
