package source

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParser checks that the parser never panics on arbitrary input and
// that the printer round-trips: anything that parses prints to a
// program that reparses, and printing is a fixpoint.
func FuzzParser(f *testing.F) {
	files, _ := filepath.Glob("../core/testdata/*.c")
	for _, fn := range files {
		if b, err := os.ReadFile(fn); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("int x = 1;\nx = x + 2;\n")
	f.Add("for (i = 0; i < 10; i++) { A[i] = A[i-1]; }\n")
	f.Add("while (x < 4) { x = x + 1; }\n")
	f.Add("par { a = 1; b = 2; }\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		out := Print(prog)
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n%s", err, out)
		}
		if again := Print(prog2); again != out {
			t.Fatalf("printing is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", out, again)
		}
	})
}
