// Package backend implements the "final compiler" of the paper's tool
// chain: code generation from the mini-C AST to the virtual ISA in
// internal/ir, linear-scan register allocation with spilling, and basic
// block list scheduling into machine bundles. Together with internal/ims
// (machine-level modulo scheduling) it models the two final-compiler
// classes the paper evaluates against: a weak GCC-like compiler (list
// scheduling only) and strong ICC/XLC-like compilers (list scheduling +
// iterative modulo scheduling).
package backend

import (
	"fmt"

	"slms/internal/dep"
	"slms/internal/ir"
	"slms/internal/sem"
	"slms/internal/source"
)

// Compile lowers a mini-C program to the virtual ISA.
func Compile(p *source.Program) (*ir.Func, error) {
	info, err := sem.Check(p)
	if err != nil {
		return nil, err
	}
	cg := &codegen{
		f: &ir.Func{
			ScalarRegs: map[string]int{},
			Arrays:     map[string]*ir.ArrayInfo{},
		},
		info: info,
	}
	cg.cur = cg.f.NewBlock()
	// Home registers for every scalar (declared or inferred), so the
	// simulator can seed inputs and extract outputs.
	for _, sym := range info.Table.Symbols() {
		if !sym.IsArray() {
			cg.f.ScalarRegs[sym.Name] = cg.f.NewReg(sym.Type)
		}
	}
	if err := cg.stmts(p.Stmts); err != nil {
		return nil, err
	}
	cg.line = 0 // Halt belongs to no source line
	cg.emit(&ir.Instr{Op: ir.Halt})
	return cg.f, nil
}

// loopCtx tracks the enclosing loop during compilation.
type loopCtx struct {
	id      int
	varName string // canonical loop variable ("" when unknown)
	headID  int    // condition block (continue target)
	exitID  int    // set after the loop is closed; breaks are patched
	breaks  []*ir.Instr
	nonFlat bool // body created extra blocks: not modulo-schedulable
	isInner bool
}

type codegen struct {
	f     *ir.Func
	cur   *ir.Block
	info  *sem.Info
	loops []*loopCtx
	// chunk arena-allocates emitted instructions in blocks of 64: one
	// heap object per chunk instead of one per instruction, and the
	// call-site literals stay on the stack since emit only copies them.
	chunk []ir.Instr
	// line is the source line of the statement being lowered; emit
	// stamps it on every instruction so the profiler can attribute
	// cycles back to source lines.
	line int32
}

func (cg *codegen) emit(in *ir.Instr) *ir.Instr {
	if len(cg.chunk) == 0 {
		cg.chunk = make([]ir.Instr, 64)
	}
	p := &cg.chunk[0]
	cg.chunk = cg.chunk[1:]
	*p = *in
	p.Line = cg.line
	cg.cur.Instrs = append(cg.cur.Instrs, p)
	return p
}

func (cg *codegen) newBlock() *ir.Block {
	b := cg.f.NewBlock()
	if len(cg.loops) > 0 {
		b.LoopID = cg.loops[len(cg.loops)-1].id
	}
	return b
}

func (cg *codegen) scalarReg(name string) int {
	if r, ok := cg.f.ScalarRegs[name]; ok {
		return r
	}
	// Scalars can appear that sem inferred late; give them a register.
	r := cg.f.NewReg(source.TFloat)
	cg.f.ScalarRegs[name] = r
	return r
}

func (cg *codegen) typeOfName(name string) source.Type {
	if s := cg.info.Table.Lookup(name); s != nil {
		return s.Type
	}
	return source.TFloat
}

// innerLoopVar returns the innermost enclosing loop's induction variable
// and loop ID ("" when not in a recognizable loop).
func (cg *codegen) innerLoopVar() (string, int) {
	if len(cg.loops) == 0 {
		return "", 0
	}
	l := cg.loops[len(cg.loops)-1]
	return l.varName, l.id
}

func (cg *codegen) stmts(ss []source.Stmt) error {
	for _, s := range ss {
		if err := cg.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (cg *codegen) stmt(s source.Stmt) error {
	cg.line = int32(s.Pos().Line)
	switch s := s.(type) {
	case *source.Decl:
		return cg.decl(s)
	case *source.Assign:
		return cg.assign(s)
	case *source.If:
		return cg.ifStmt(s)
	case *source.For:
		return cg.forStmt(s)
	case *source.While:
		return cg.whileStmt(s)
	case *source.Block:
		return cg.stmts(s.Stmts)
	case *source.Par:
		// Par groups flatten: the schedulers rediscover the parallelism
		// from the dependence-free instructions.
		return cg.stmts(s.Stmts)
	case *source.Break:
		if len(cg.loops) == 0 {
			return fmt.Errorf("backend: break outside loop")
		}
		l := cg.loops[len(cg.loops)-1]
		br := cg.emit(&ir.Instr{Op: ir.Br})
		l.breaks = append(l.breaks, br)
		cg.cur = cg.newBlock()
		l.nonFlat = true
		return nil
	case *source.Continue:
		if len(cg.loops) == 0 {
			return fmt.Errorf("backend: continue outside loop")
		}
		l := cg.loops[len(cg.loops)-1]
		cg.emit(&ir.Instr{Op: ir.Br, Target: l.headID})
		cg.cur = cg.newBlock()
		l.nonFlat = true
		return nil
	case *source.ExprStmt:
		_, _, err := cg.expr(s.X)
		return err
	}
	return fmt.Errorf("backend: cannot compile %T", s)
}

func (cg *codegen) decl(d *source.Decl) error {
	if len(d.Dims) == 0 {
		r := cg.scalarReg(d.Name)
		if d.Init != nil {
			v, t, err := cg.expr(d.Init)
			if err != nil {
				return err
			}
			v = cg.convert(v, t, d.Type)
			cg.emit(&ir.Instr{Op: ir.Mov, Type: d.Type, Dst: r, Args: []ir.Val{v}})
		}
		return nil
	}
	ai := &ir.ArrayInfo{Type: d.Type}
	for _, de := range d.Dims {
		v, t, err := cg.expr(de)
		if err != nil {
			return err
		}
		if t != source.TInt {
			return fmt.Errorf("backend: array dimension must be int")
		}
		r := cg.f.NewReg(source.TInt)
		cg.emit(&ir.Instr{Op: ir.Mov, Type: source.TInt, Dst: r, Args: []ir.Val{v}})
		ai.DimRegs = append(ai.DimRegs, r)
	}
	cg.f.Arrays[d.Name] = ai
	return nil
}

// address computes the flattened element index of an array reference and
// builds its affine disambiguation tag.
func (cg *codegen) address(ix *source.IndexExpr) (ir.Val, ir.AffineTag, error) {
	ai, ok := cg.f.Arrays[ix.Name]
	if !ok {
		return ir.Val{}, ir.AffineTag{}, fmt.Errorf("backend: array %q not declared before use", ix.Name)
	}
	if len(ix.Indices) != len(ai.DimRegs) {
		return ir.Val{}, ir.AffineTag{}, fmt.Errorf("backend: rank mismatch on %q", ix.Name)
	}
	loopVar, loopID := cg.innerLoopVar()
	tag := ir.AffineTag{Valid: loopVar != "", LoopID: loopID}
	var flat ir.Val
	for k, sub := range ix.Indices {
		v, t, err := cg.expr(sub)
		if err != nil {
			return ir.Val{}, ir.AffineTag{}, err
		}
		if t != source.TInt {
			return ir.Val{}, ir.AffineTag{}, fmt.Errorf("backend: subscript of %q must be int", ix.Name)
		}
		if tag.Valid {
			a := dep.ExtractAffine(sub, loopVar)
			if !a.OK {
				tag.Valid = false
			} else {
				tag.Dims = append(tag.Dims, a)
			}
		}
		if k == 0 {
			flat = v
			continue
		}
		// flat = flat * dim_k + v
		m := cg.f.NewReg(source.TInt)
		cg.emit(&ir.Instr{Op: ir.Mul, Type: source.TInt, Dst: m,
			Args: []ir.Val{flat, ir.R(ai.DimRegs[k])}})
		a2 := cg.f.NewReg(source.TInt)
		cg.emit(&ir.Instr{Op: ir.Add, Type: source.TInt, Dst: a2,
			Args: []ir.Val{ir.R(m), v}})
		flat = ir.R(a2)
	}
	return flat, tag, nil
}

func (cg *codegen) assign(a *source.Assign) error {
	rhs, rt, err := cg.expr(a.RHS)
	if err != nil {
		return err
	}
	switch lhs := a.LHS.(type) {
	case *source.VarRef:
		r := cg.scalarReg(lhs.Name)
		t := cg.typeOfName(lhs.Name)
		if a.Op != source.AEq {
			rhs = cg.binArith(a.Op.BinOp(), ir.R(r), t, rhs, rt)
			rt = promoted(t, rt)
		}
		rhs = cg.convert(rhs, rt, t)
		cg.emit(&ir.Instr{Op: ir.Mov, Type: t, Dst: r, Args: []ir.Val{rhs}})
		return nil
	case *source.IndexExpr:
		addr, tag, err := cg.address(lhs)
		if err != nil {
			return err
		}
		t := cg.typeOfName(lhs.Name)
		if a.Op != source.AEq {
			old := cg.f.NewReg(t)
			cg.emit(&ir.Instr{Op: ir.Load, Type: t, Dst: old, Args: []ir.Val{addr},
				Arr: lhs.Name, Tag: tag})
			rhs = cg.binArith(a.Op.BinOp(), ir.R(old), t, rhs, rt)
			rt = promoted(t, rt)
		}
		rhs = cg.convert(rhs, rt, t)
		cg.emit(&ir.Instr{Op: ir.Store, Type: t, Dst: -1,
			Args: []ir.Val{addr, rhs}, Arr: lhs.Name, Tag: tag})
		return nil
	}
	return fmt.Errorf("backend: bad assignment target")
}

// ifStmt compiles predicable single-assignment ifs into Select
// instructions (keeping loop bodies branch-free, as the paper's
// if-conversion intends) and general ifs into control flow.
func (cg *codegen) ifStmt(s *source.If) error {
	if as, ok := predicableAssign(s); ok {
		return cg.predicated(s.Cond, as)
	}
	cond, t, err := cg.expr(s.Cond)
	if err != nil {
		return err
	}
	if t != source.TBool {
		return fmt.Errorf("backend: if condition must be bool")
	}
	brf := cg.emit(&ir.Instr{Op: ir.BrFalse, Args: []ir.Val{cond}})
	if len(cg.loops) > 0 {
		cg.loops[len(cg.loops)-1].nonFlat = true
	}
	cg.cur = cg.newBlock()
	if err := cg.stmts(s.Then.Stmts); err != nil {
		return err
	}
	if s.Else == nil {
		next := cg.newBlock()
		cg.cur = next
		brf.Target = next.ID
		return nil
	}
	brEnd := cg.emit(&ir.Instr{Op: ir.Br})
	elseBlk := cg.newBlock()
	brf.Target = elseBlk.ID
	cg.cur = elseBlk
	if err := cg.stmts(s.Else.Stmts); err != nil {
		return err
	}
	end := cg.newBlock()
	brEnd.Target = end.ID
	cg.cur = end
	return nil
}

// predicableAssign reports whether the if is a single predicated
// assignment with no else.
func predicableAssign(s *source.If) (*source.Assign, bool) {
	if s.Else != nil || len(s.Then.Stmts) != 1 {
		return nil, false
	}
	as, ok := s.Then.Stmts[0].(*source.Assign)
	return as, ok
}

// predicated lowers `if (c) lhs = rhs` as a conditional select: the new
// value is computed, then merged with the old value under the predicate.
func (cg *codegen) predicated(cond source.Expr, a *source.Assign) error {
	cv, ct, err := cg.expr(cond)
	if err != nil {
		return err
	}
	if ct != source.TBool {
		return fmt.Errorf("backend: predicate must be bool")
	}
	rhs, rt, err := cg.expr(a.RHS)
	if err != nil {
		return err
	}
	switch lhs := a.LHS.(type) {
	case *source.VarRef:
		r := cg.scalarReg(lhs.Name)
		t := cg.typeOfName(lhs.Name)
		if a.Op != source.AEq {
			rhs = cg.binArith(a.Op.BinOp(), ir.R(r), t, rhs, rt)
			rt = promoted(t, rt)
		}
		rhs = cg.convert(rhs, rt, t)
		sel := cg.f.NewReg(t)
		cg.emit(&ir.Instr{Op: ir.Select, Type: t, Dst: sel, Args: []ir.Val{cv, rhs, ir.R(r)}})
		cg.emit(&ir.Instr{Op: ir.Mov, Type: t, Dst: r, Args: []ir.Val{ir.R(sel)}})
		return nil
	case *source.IndexExpr:
		addr, tag, err := cg.address(lhs)
		if err != nil {
			return err
		}
		t := cg.typeOfName(lhs.Name)
		old := cg.f.NewReg(t)
		cg.emit(&ir.Instr{Op: ir.Load, Type: t, Dst: old, Args: []ir.Val{addr},
			Arr: lhs.Name, Tag: tag})
		if a.Op != source.AEq {
			rhs = cg.binArith(a.Op.BinOp(), ir.R(old), t, rhs, rt)
			rt = promoted(t, rt)
		}
		rhs = cg.convert(rhs, rt, t)
		sel := cg.f.NewReg(t)
		cg.emit(&ir.Instr{Op: ir.Select, Type: t, Dst: sel, Args: []ir.Val{cv, rhs, ir.R(old)}})
		cg.emit(&ir.Instr{Op: ir.Store, Type: t, Dst: -1,
			Args: []ir.Val{addr, ir.R(sel)}, Arr: lhs.Name, Tag: tag})
		return nil
	}
	return fmt.Errorf("backend: bad predicated assignment target")
}

func (cg *codegen) forStmt(s *source.For) error {
	if s.Init != nil {
		if err := cg.stmt(s.Init); err != nil {
			return err
		}
	}
	cg.f.NumLoops++
	lc := &loopCtx{id: cg.f.NumLoops}
	if l, err := sem.Canonicalize(s); err == nil {
		lc.varName = l.Var
	}
	head := cg.newBlock()
	lc.headID = head.ID
	cg.cur = head
	cg.loops = append(cg.loops, lc)

	var brExit *ir.Instr
	if s.Cond != nil {
		cond, _, err := cg.expr(s.Cond)
		if err != nil {
			return err
		}
		brExit = cg.emit(&ir.Instr{Op: ir.BrFalse, Args: []ir.Val{cond}})
	}
	body := cg.newBlock()
	cg.cur = body
	blocksBefore := len(cg.f.Blocks)
	if err := cg.stmts(s.Body.Stmts); err != nil {
		return err
	}
	if s.Post != nil {
		if err := cg.stmt(s.Post); err != nil {
			return err
		}
	}
	cg.emit(&ir.Instr{Op: ir.Br, Target: head.ID})
	flat := len(cg.f.Blocks) == blocksBefore && !lc.nonFlat
	if flat && lc.varName != "" {
		body.IsLoopBody = true
		body.Counted = true
		body.LoopID = lc.id
	}

	exit := cg.f.NewBlock() // outside the loop: no LoopID
	if brExit != nil {
		brExit.Target = exit.ID
	}
	for _, br := range lc.breaks {
		br.Target = exit.ID
	}
	cg.loops = cg.loops[:len(cg.loops)-1]
	cg.cur = exit
	return nil
}

func (cg *codegen) whileStmt(s *source.While) error {
	cg.f.NumLoops++
	lc := &loopCtx{id: cg.f.NumLoops}
	// While-loops whose last statement is an induction update have a
	// consistent affine view for every reference in the body (they all
	// precede the update), so memory tags stay valid.
	lc.varName = whileInductionVar(s)
	head := cg.newBlock()
	lc.headID = head.ID
	cg.cur = head
	cg.loops = append(cg.loops, lc)
	cond, _, err := cg.expr(s.Cond)
	if err != nil {
		return err
	}
	brExit := cg.emit(&ir.Instr{Op: ir.BrFalse, Args: []ir.Val{cond}})
	body := cg.newBlock()
	cg.cur = body
	blocksBefore := len(cg.f.Blocks)
	if err := cg.stmts(s.Body.Stmts); err != nil {
		return err
	}
	cg.emit(&ir.Instr{Op: ir.Br, Target: head.ID})
	// A flat while body is rotated like a counted loop (do-while
	// conversion), but never modulo scheduled (Counted stays false).
	if len(cg.f.Blocks) == blocksBefore && !lc.nonFlat {
		body.IsLoopBody = true
		body.LoopID = lc.id
	}
	exit := cg.f.NewBlock()
	brExit.Target = exit.ID
	for _, br := range lc.breaks {
		br.Target = exit.ID
	}
	cg.loops = cg.loops[:len(cg.loops)-1]
	cg.cur = exit
	return nil
}

// whileInductionVar recognizes `v += c` / `v = v + c` as the last body
// statement, with v read by the condition, and returns v ("" otherwise).
func whileInductionVar(s *source.While) string {
	if len(s.Body.Stmts) == 0 {
		return ""
	}
	as, ok := s.Body.Stmts[len(s.Body.Stmts)-1].(*source.Assign)
	if !ok {
		return ""
	}
	v, ok := as.LHS.(*source.VarRef)
	if !ok {
		return ""
	}
	isInd := false
	switch as.Op {
	case source.AAdd, source.ASub:
		_, isInd = source.ConstInt(as.RHS)
	case source.AEq:
		if b, okb := as.RHS.(*source.Binary); okb && (b.Op == source.OpAdd || b.Op == source.OpSub) {
			if bv, okv := b.X.(*source.VarRef); okv && bv.Name == v.Name {
				_, isInd = source.ConstInt(b.Y)
			}
		}
	}
	if !isInd {
		return ""
	}
	// No other statement may write v (tags would go stale).
	for _, st := range s.Body.Stmts[:len(s.Body.Stmts)-1] {
		bad := false
		source.WalkStmt(st, func(x source.Stmt) bool {
			if a2, ok := x.(*source.Assign); ok {
				if v2, ok := a2.LHS.(*source.VarRef); ok && v2.Name == v.Name {
					bad = true
					return false
				}
			}
			return true
		})
		if bad {
			return ""
		}
	}
	used := false
	source.WalkExprs(s.Cond, func(e source.Expr) bool {
		if vr, ok := e.(*source.VarRef); ok && vr.Name == v.Name {
			used = true
			return false
		}
		return true
	})
	if !used {
		return ""
	}
	return v.Name
}

// ------------------------------------------------------------ expressions

func promoted(a, b source.Type) source.Type {
	if a == source.TFloat || b == source.TFloat {
		return source.TFloat
	}
	return source.TInt
}

// convert inserts a Cvt when the value's type differs from want.
func (cg *codegen) convert(v ir.Val, have, want source.Type) ir.Val {
	if have == want || want == source.TUnknown || have == source.TBool || want == source.TBool {
		return v
	}
	// Fold immediate conversions.
	switch v.Kind {
	case ir.KInt:
		if want == source.TFloat {
			return ir.ImmF(float64(v.I))
		}
		return v
	case ir.KFloat:
		if want == source.TInt {
			return ir.ImmI(int64(v.F))
		}
		return v
	}
	r := cg.f.NewReg(want)
	cg.emit(&ir.Instr{Op: ir.Cvt, Type: want, Dst: r, Args: []ir.Val{v}})
	return ir.R(r)
}

// binArith emits a binary arithmetic op with promotion, returning the
// result operand.
func (cg *codegen) binArith(op source.Op, x ir.Val, xt source.Type, y ir.Val, yt source.Type) ir.Val {
	t := promoted(xt, yt)
	x = cg.convert(x, xt, t)
	y = cg.convert(y, yt, t)
	var o ir.Op
	switch op {
	case source.OpAdd:
		o = ir.Add
	case source.OpSub:
		o = ir.Sub
	case source.OpMul:
		o = ir.Mul
	case source.OpDiv:
		o = ir.Div
	case source.OpMod:
		o = ir.Mod
	}
	r := cg.f.NewReg(t)
	cg.emit(&ir.Instr{Op: o, Type: t, Dst: r, Args: []ir.Val{x, y}})
	return ir.R(r)
}

// expr compiles an expression, returning its operand and type. Logical
// operators evaluate both operands (machine-style eager evaluation).
func (cg *codegen) expr(e source.Expr) (ir.Val, source.Type, error) {
	switch e := e.(type) {
	case *source.IntLit:
		return ir.ImmI(e.Value), source.TInt, nil
	case *source.FloatLit:
		return ir.ImmF(e.Value), source.TFloat, nil
	case *source.BoolLit:
		return ir.ImmB(e.Value), source.TBool, nil
	case *source.VarRef:
		if sym := cg.info.Table.Lookup(e.Name); sym != nil && sym.IsArray() {
			return ir.Val{}, 0, fmt.Errorf("backend: array %q used as scalar", e.Name)
		}
		return ir.R(cg.scalarReg(e.Name)), cg.typeOfName(e.Name), nil
	case *source.IndexExpr:
		addr, tag, err := cg.address(e)
		if err != nil {
			return ir.Val{}, 0, err
		}
		t := cg.typeOfName(e.Name)
		r := cg.f.NewReg(t)
		cg.emit(&ir.Instr{Op: ir.Load, Type: t, Dst: r, Args: []ir.Val{addr},
			Arr: e.Name, Tag: tag})
		return ir.R(r), t, nil
	case *source.Unary:
		x, t, err := cg.expr(e.X)
		if err != nil {
			return ir.Val{}, 0, err
		}
		switch e.Op {
		case source.OpNeg:
			r := cg.f.NewReg(t)
			cg.emit(&ir.Instr{Op: ir.Neg, Type: t, Dst: r, Args: []ir.Val{x}})
			return ir.R(r), t, nil
		case source.OpNot:
			r := cg.f.NewReg(source.TBool)
			cg.emit(&ir.Instr{Op: ir.Not, Type: source.TBool, Dst: r, Args: []ir.Val{x}})
			return ir.R(r), source.TBool, nil
		}
		return ir.Val{}, 0, fmt.Errorf("backend: bad unary op")
	case *source.Binary:
		x, xt, err := cg.expr(e.X)
		if err != nil {
			return ir.Val{}, 0, err
		}
		y, yt, err := cg.expr(e.Y)
		if err != nil {
			return ir.Val{}, 0, err
		}
		switch {
		case e.Op == source.OpAnd || e.Op == source.OpOr:
			o := ir.And
			if e.Op == source.OpOr {
				o = ir.Or
			}
			r := cg.f.NewReg(source.TBool)
			cg.emit(&ir.Instr{Op: o, Type: source.TBool, Dst: r, Args: []ir.Val{x, y}})
			return ir.R(r), source.TBool, nil
		case e.Op.IsComparison():
			t := promoted(xt, yt)
			if xt == source.TBool && yt == source.TBool {
				t = source.TBool
			}
			x = cg.convert(x, xt, t)
			y = cg.convert(y, yt, t)
			var o ir.Op
			switch e.Op {
			case source.OpLT:
				o = ir.CmpLT
			case source.OpLE:
				o = ir.CmpLE
			case source.OpGT:
				o = ir.CmpGT
			case source.OpGE:
				o = ir.CmpGE
			case source.OpEQ:
				o = ir.CmpEQ
			case source.OpNE:
				o = ir.CmpNE
			}
			r := cg.f.NewReg(source.TBool)
			cg.emit(&ir.Instr{Op: o, Type: t, Dst: r, Args: []ir.Val{x, y}})
			return ir.R(r), source.TBool, nil
		default:
			v := cg.binArith(e.Op, x, xt, y, yt)
			return v, promoted(xt, yt), nil
		}
	case *source.CondExpr:
		c, _, err := cg.expr(e.Cond)
		if err != nil {
			return ir.Val{}, 0, err
		}
		a, at, err := cg.expr(e.A)
		if err != nil {
			return ir.Val{}, 0, err
		}
		b, bt, err := cg.expr(e.B)
		if err != nil {
			return ir.Val{}, 0, err
		}
		t := promoted(at, bt)
		if at == source.TBool {
			t = source.TBool
		}
		a = cg.convert(a, at, t)
		b = cg.convert(b, bt, t)
		r := cg.f.NewReg(t)
		cg.emit(&ir.Instr{Op: ir.Select, Type: t, Dst: r, Args: []ir.Val{c, a, b}})
		return ir.R(r), t, nil
	case *source.Call:
		var args []ir.Val
		widest := source.TInt
		for _, a := range e.Args {
			v, t, err := cg.expr(a)
			if err != nil {
				return ir.Val{}, 0, err
			}
			widest = promoted(widest, t)
			args = append(args, v)
		}
		in, ok := sem.Intrinsics[e.Name]
		if !ok {
			return ir.Val{}, 0, fmt.Errorf("backend: unknown function %q", e.Name)
		}
		rt := in.Result
		if rt == source.TUnknown {
			rt = widest
		}
		r := cg.f.NewReg(rt)
		cg.emit(&ir.Instr{Op: ir.Call, Type: rt, Dst: r, Args: args, Fn: e.Name})
		return ir.R(r), rt, nil
	}
	return ir.Val{}, 0, fmt.Errorf("backend: cannot compile expression %T", e)
}
