package backend

import (
	"testing"

	"slms/internal/dep"
	"slms/internal/ir"
	"slms/internal/machine"
	"slms/internal/source"
)

// compileBody compiles src and returns the function plus its innermost
// loop body block (nil if none).
func compileBody(t *testing.T, src string) (*ir.Func, *ir.Block) {
	t.Helper()
	f, err := Compile(source.MustParse(src))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, b := range f.Blocks {
		if b.IsLoopBody {
			return f, b
		}
	}
	return f, nil
}

func TestCodegenMarksLoopBodies(t *testing.T) {
	_, body := compileBody(t, `
		float A[10];
		for (i = 0; i < 10; i++) { A[i] = i * 2.0; }
	`)
	if body == nil {
		t.Fatal("flat loop body not marked")
	}
	// A loop with control flow inside must not be marked.
	f, _ := compileBody(t, `
		float A[10];
		for (i = 0; i < 10; i++) {
			if (A[i] > 0.0) {
				A[i] = 0.0;
				A[i] = A[i] + 1.0;
			} else {
				A[i] = 1.0;
			}
		}
	`)
	for _, b := range f.Blocks {
		if b.IsLoopBody {
			t.Errorf("branchy loop body wrongly marked: block %d", b.ID)
		}
	}
}

func TestCodegenPredicatedSingleAssignStaysFlat(t *testing.T) {
	// `if (p) x = e;` must lower to a Select, keeping the body one block.
	f, body := compileBody(t, `
		float A[10];
		float mx = 0.0;
		bool p = false;
		for (i = 0; i < 10; i++) {
			p = mx < A[i];
			if (p) mx = A[i];
		}
	`)
	if body == nil {
		t.Fatalf("predicated body should stay flat:\n%s", f.Dump())
	}
	hasSelect := false
	for _, in := range body.Instrs {
		if in.Op == ir.Select {
			hasSelect = true
		}
	}
	if !hasSelect {
		t.Errorf("expected Select in predicated body:\n%s", f.Dump())
	}
}

func TestCodegenAffineTags(t *testing.T) {
	_, body := compileBody(t, `
		float A[64];
		for (i = 0; i < 60; i++) { A[i+2] = A[i] + 1.0; }
	`)
	if body == nil {
		t.Fatal("no loop body")
	}
	var load, store *ir.Instr
	for _, in := range body.Instrs {
		if in.Op == ir.Load && in.Arr == "A" {
			load = in
		}
		if in.Op == ir.Store && in.Arr == "A" {
			store = in
		}
	}
	if load == nil || store == nil {
		t.Fatal("missing load/store")
	}
	if !load.Tag.Valid || !store.Tag.Valid {
		t.Fatalf("tags missing: load=%+v store=%+v", load.Tag, store.Tag)
	}
	res, d := ir.TagDistance(store.Tag, load.Tag)
	// Store touches i+2; load at iteration i+d touches (i+d): equal when
	// d = 2.
	if d != 2 {
		t.Errorf("tag distance = %v,%d, want exact 2", res, d)
	}
}

func TestLocalCSERemovesDuplicateIndexMath(t *testing.T) {
	f, body := compileBody(t, `
		float A[64]; float B[64];
		for (i = 0; i < 60; i++) {
			A[i+1] = B[i+1] + B[i+1];
		}
	`)
	countAdds := func() int {
		n := 0
		for _, in := range body.Instrs {
			if in.Op == ir.Add && in.Type == source.TInt {
				n++
			}
		}
		return n
	}
	before := countAdds()
	removed := LocalCSE(f)
	after := countAdds()
	if removed == 0 || after >= before {
		t.Errorf("CSE removed %d, int adds %d -> %d", removed, before, after)
	}
}

func TestLocalCSEKillsOnRedefinition(t *testing.T) {
	// i+1 recomputed after i changes must NOT be deduped.
	f := &ir.Func{ScalarRegs: map[string]int{}, Arrays: map[string]*ir.ArrayInfo{}}
	ri := f.NewReg(source.TInt)
	r1 := f.NewReg(source.TInt)
	r2 := f.NewReg(source.TInt)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.Add, Type: source.TInt, Dst: r1, Args: []ir.Val{ir.R(ri), ir.ImmI(1)}},
		{Op: ir.Add, Type: source.TInt, Dst: ri, Args: []ir.Val{ir.R(ri), ir.ImmI(1)}}, // i changes
		{Op: ir.Add, Type: source.TInt, Dst: r2, Args: []ir.Val{ir.R(ri), ir.ImmI(1)}},
		{Op: ir.Halt},
	}
	LocalCSE(f)
	if b.Instrs[2].Op != ir.Add {
		t.Errorf("CSE wrongly deduped across redefinition:\n%s", f.Dump())
	}
}

func TestLocalCSENeverTouchesFloats(t *testing.T) {
	f := &ir.Func{ScalarRegs: map[string]int{}, Arrays: map[string]*ir.ArrayInfo{}}
	ra := f.NewReg(source.TFloat)
	r1 := f.NewReg(source.TFloat)
	r2 := f.NewReg(source.TFloat)
	b := f.NewBlock()
	b.Instrs = []*ir.Instr{
		{Op: ir.Add, Type: source.TFloat, Dst: r1, Args: []ir.Val{ir.R(ra), ir.ImmF(1)}},
		{Op: ir.Add, Type: source.TFloat, Dst: r2, Args: []ir.Val{ir.R(ra), ir.ImmF(1)}},
		{Op: ir.Halt},
	}
	if n := LocalCSE(f); n != 0 {
		t.Errorf("CSE touched float arithmetic (%d removed)", n)
	}
	if b.Instrs[1].Op != ir.Add {
		t.Error("float add rewritten")
	}
}

func TestListScheduleRespectsDepsAndResources(t *testing.T) {
	d := machine.IA64Like()
	_, body := compileBody(t, `
		float A[64]; float B[64]; float C[64];
		for (i = 0; i < 60; i++) {
			C[i] = A[i] * B[i] + 2.0;
		}
	`)
	s := ListSchedule(body, d, true, 0)
	// Dependences: every RAW pair must be separated by the latency.
	edges := blockDeps(body.Instrs, d, true)
	for _, e := range edges {
		if s.CycleOf[e.to] < s.CycleOf[e.from]+e.lat {
			t.Errorf("schedule violates edge %d->%d (lat %d): %d vs %d",
				e.from, e.to, e.lat, s.CycleOf[e.from], s.CycleOf[e.to])
		}
	}
	// Resources: count per cycle per unit.
	perCycle := map[int]map[machine.FU]int{}
	width := map[int]int{}
	for i, in := range body.Instrs {
		c := s.CycleOf[i]
		if perCycle[c] == nil {
			perCycle[c] = map[machine.FU]int{}
		}
		perCycle[c][machine.UnitOf(in)]++
		width[c]++
	}
	for c, fus := range perCycle {
		if width[c] > d.IssueWidth {
			t.Errorf("cycle %d exceeds issue width: %d", c, width[c])
		}
		for fu, n := range fus {
			if n > d.Units[fu] {
				t.Errorf("cycle %d exceeds %v units: %d", c, fu, n)
			}
		}
	}
}

func TestWindowLimitsLookahead(t *testing.T) {
	d := machine.IA64Like()
	_, body := compileBody(t, `
		float A[64]; float B[64]; float C[64]; float D[64];
		for (i = 0; i < 60; i++) {
			A[i] = A[i] * 2.0;
			B[i] = B[i] * 2.0;
			C[i] = C[i] * 2.0;
			D[i] = D[i] * 2.0;
		}
	`)
	wide := ListSchedule(body, d, true, 0)
	narrow := ListSchedule(body, d, true, 2)
	if narrow.Len < wide.Len {
		t.Errorf("window-2 schedule shorter than unbounded: %d < %d", narrow.Len, wide.Len)
	}
}

func TestSequentialScheduleInOrder(t *testing.T) {
	d := machine.PentiumLike()
	_, body := compileBody(t, `
		float A[64]; float B[64];
		for (i = 0; i < 60; i++) { B[i] = A[i] * 2.0 + 1.0; }
	`)
	s := SequentialSchedule(body, d)
	for i := 1; i < len(body.Instrs); i++ {
		if s.CycleOf[i] < s.CycleOf[i-1] {
			t.Errorf("in-order schedule goes backwards at %d", i)
		}
	}
	if s.Len <= 0 || s.SteadyLen < s.Len {
		t.Errorf("bad lengths: %+v", s)
	}
}

func TestCarriedStallOnRecurrence(t *testing.T) {
	// An accumulator whose fadd result feeds the next iteration: steady
	// length must cover the fadd latency.
	d := machine.IA64Like()
	_, body := compileBody(t, `
		float A[64];
		float s = 0.0;
		for (i = 0; i < 60; i++) { s = s + A[i]; }
	`)
	sch := ListSchedule(body, d, true, 0)
	if sch.SteadyLen < d.Lat.FloatOp {
		t.Errorf("steady length %d hides the carried fadd latency %d", sch.SteadyLen, d.Lat.FloatOp)
	}
}

func TestAllocateNoSpillsOnBigFile(t *testing.T) {
	f, _ := compileBody(t, `
		float A[64];
		float s = 0.0;
		for (i = 0; i < 60; i++) { s += A[i] * 2.0; }
	`)
	res := Allocate(f, machine.IA64Like())
	if res.SpilledRegs != 0 {
		t.Errorf("unexpected spills: %+v", res)
	}
}

func TestAllocateSpillsAndKeepsSemantics(t *testing.T) {
	// Semantics after spilling are covered end-to-end in the pipeline
	// tests; here we check the bookkeeping.
	src := `
		float A[64];
		float s = 0.0;
		for (i = 0; i < 40; i++) {
			a1 = A[i]; a2 = A[i+1]; a3 = A[i+2]; a4 = A[i+3]; a5 = A[i+4];
			a6 = A[i+5]; a7 = A[i+6]; a8 = A[i+7]; a9 = A[i+8]; a10 = A[i+9];
			s = s + a1*a10 + a2*a9 + a3*a8 + a4*a7 + a5*a6;
		}
	`
	f, err := Compile(source.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	res := Allocate(f, machine.PentiumLike())
	if res.SpilledRegs == 0 || res.SpillLoads == 0 || res.SpillStores == 0 {
		t.Fatalf("expected spills on 8-register machine: %+v", res)
	}
	if f.Arrays[SpillArray] == nil || f.Arrays[SpillArray].StaticLen < res.SpilledRegs {
		t.Errorf("spill array misconfigured: %+v", f.Arrays[SpillArray])
	}
	// Branches must still terminate their blocks.
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op.IsBranch() && i != len(b.Instrs)-1 {
				t.Errorf("branch not last in block %d:\n%s", b.ID, f.Dump())
			}
		}
	}
}

func TestMemConflictWeakVsStrong(t *testing.T) {
	a := &ir.Instr{Op: ir.Store, Arr: "A",
		Tag: ir.AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{{Coeff: 1, Const: 0, OK: true}}}}
	b := &ir.Instr{Op: ir.Load, Arr: "A",
		Tag: ir.AffineTag{Valid: true, LoopID: 1, Dims: []dep.Affine{{Coeff: 1, Const: 2, OK: true}}}}
	// Weak compiler: same array ⇒ ordered.
	if !memConflict(a, b, false) {
		t.Error("weak compiler must keep same-array accesses ordered")
	}
	// Strong compiler: A[i] vs A[i+2] never collide within one iteration.
	if memConflict(a, b, true) {
		t.Error("strong compiler should disambiguate constant-offset accesses")
	}
	c := &ir.Instr{Op: ir.Load, Arr: "B"}
	if memConflict(a, c, false) {
		t.Error("distinct arrays never alias")
	}
}
