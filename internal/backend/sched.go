package backend

import (
	"sync"

	"slms/internal/dep"
	"slms/internal/ir"
	"slms/internal/machine"
)

// BlockSched is the static timing of one basic block on a Static-policy
// (VLIW) machine.
type BlockSched struct {
	// CycleOf is the issue cycle of each instruction.
	CycleOf []int
	// Len is the cycles one pass through the block takes (fill).
	Len int
	// SteadyLen is the per-iteration cost when the block is a loop body
	// executed back to back: Len plus any loop-carried stall the static
	// schedule exposes.
	SteadyLen int
	// Bundles is the number of non-empty issue groups (the "bundle count"
	// metric of the paper's IA-64 analysis).
	Bundles int
}

// depEdge is a scheduling dependence within a block.
type depEdge struct {
	from, to int
	lat      int
}

// edgePool recycles dependence-edge buffers: blocks with many memory
// ops produce O(n²) edges, and rebuilding the DAG for every block of
// every compilation dominated allocation volume.
var edgePool = sync.Pool{New: func() any { return new([]depEdge) }}

// blockDeps builds the intra-block scheduling DAG. useTags enables
// affine memory disambiguation (the strong-compiler front end forwards
// subscript analysis to the back end); without it any two accesses to
// the same array conflict. The returned slice draws from edgePool; the
// caller releases it with putEdges when done.
func blockDeps(ins []*ir.Instr, d *machine.Desc, useTags bool) []depEdge {
	// Register state is indexed by register number (registers are
	// physical here, so the range is small and dense) — maps on this
	// path dominated compile time.
	maxReg := maxRegOf(ins)
	edges := (*edgePool.Get().(*[]depEdge))[:0]
	lastDef := make([]int, maxReg+1)    // reg -> instr index (-1 = none)
	lastUses := make([][]int, maxReg+1) // reg -> instr indexes since last def
	for i := range lastDef {
		lastDef[i] = -1
	}

	addMem := func(i, j int, lat int) { edges = append(edges, depEdge{i, j, lat}) }

	var useBuf []int
	for j, in := range ins {
		// Register dependences.
		useBuf = in.AppendUses(useBuf[:0])
		for _, r := range useBuf {
			if i := lastDef[r]; i >= 0 {
				edges = append(edges, depEdge{i, j, d.Latency(ins[i])}) // RAW
			}
			lastUses[r] = append(lastUses[r], j)
		}
		if in.Dst >= 0 {
			if i := lastDef[in.Dst]; i >= 0 {
				edges = append(edges, depEdge{i, j, 1}) // WAW
			}
			for _, u := range lastUses[in.Dst] {
				if u != j {
					edges = append(edges, depEdge{u, j, 0}) // WAR
				}
			}
			lastDef[in.Dst] = j
			lastUses[in.Dst] = lastUses[in.Dst][:0]
		}
		// Memory dependences.
		if in.Op.IsMem() {
			for i := j - 1; i >= 0; i-- {
				p := ins[i]
				if !p.Op.IsMem() {
					continue
				}
				if p.Op == ir.Load && in.Op == ir.Load {
					continue
				}
				if !memConflict(p, in, useTags) {
					continue
				}
				lat := 0
				if p.Op == ir.Store {
					lat = d.Lat.Store // store→load/store ordering
				}
				addMem(i, j, lat)
			}
		}
		// Everything stays before the terminating branch.
		if in.Op.IsBranch() {
			for i := 0; i < j; i++ {
				edges = append(edges, depEdge{i, j, 0})
			}
		}
	}
	return edges
}

// putEdges returns a blockDeps result to the pool.
func putEdges(edges []depEdge) {
	edgePool.Put(&edges)
}

// memConflict decides whether two memory ops to possibly-equal addresses
// must stay ordered within one loop iteration.
func memConflict(a, b *ir.Instr, useTags bool) bool {
	if a.Arr != b.Arr {
		return false // distinct arrays never alias in mini-C
	}
	if !useTags {
		return true
	}
	res, dist := ir.TagDistance(a.Tag, b.Tag)
	switch res {
	case dep.DistNone:
		return false
	case dep.DistExact:
		// Within a single iteration only distance 0 collides.
		return dist == 0
	default:
		return true
	}
}

// ListSchedule performs resource-constrained list scheduling of one
// block (critical-path priority), returning the static timing.
//
// window bounds the scheduler's lookahead in program order (0 =
// unbounded): an instruction can only be picked while fewer than
// `window` earlier instructions remain unscheduled. Small windows model
// the limited scheduling regions of weak compilers — the reason SLMS
// helps them is precisely that it moves parallel work syntactically
// close together.
func ListSchedule(b *ir.Block, d *machine.Desc, useTags bool, window int) *BlockSched {
	ins := b.Instrs
	n := len(ins)
	s := &BlockSched{CycleOf: make([]int, n)}
	if n == 0 {
		s.Len, s.SteadyLen = 1, 1
		return s
	}
	edges := blockDeps(ins, d, useTags)
	// Bucket edges by source into one backing array (counting sort keeps
	// per-source edge order identical to repeated appends).
	succs := make([][]depEdge, n)
	npreds := make([]int, n)
	outdeg := make([]int, n)
	for _, e := range edges {
		outdeg[e.from]++
		npreds[e.to]++
	}
	backing := make([]depEdge, len(edges))
	pos := 0
	for i := 0; i < n; i++ {
		succs[i] = backing[pos : pos : pos+outdeg[i]]
		pos += outdeg[i]
	}
	for _, e := range edges {
		succs[e.from] = append(succs[e.from], e)
	}
	putEdges(edges) // bucketed copies in backing are the live view now
	// Heights: longest latency path to any sink.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, e := range succs[i] {
			if v := height[e.to] + e.lat; v > h {
				h = v
			}
		}
		height[i] = h
	}
	ready := make([]int, 0, n)
	readyAt := make([]int, n)
	pending := make([]int, n)
	copy(pending, npreds)
	for i := 0; i < n; i++ {
		if pending[i] == 0 {
			ready = append(ready, i)
		}
	}
	isScheduled := make([]bool, n)
	rest := make([]int, 0, n)
	scheduled := 0
	cycle := 0
	for scheduled < n {
		// The weak-compiler window: only instructions close (in program
		// order) to the earliest unscheduled one are candidates.
		horizon := n
		if window > 0 {
			first := 0
			for first < n && isScheduled[first] {
				first++
			}
			horizon = first + window
		}
		// Candidates ready this cycle, by height then source order.
		// Insertion sort: the list is small and mostly ordered from the
		// previous cycle, and (height desc, index asc) is a total order,
		// so this yields exactly the comparison sort's result.
		for a := 1; a < len(ready); a++ {
			x := ready[a]
			b := a - 1
			for b >= 0 && (height[ready[b]] < height[x] ||
				(height[ready[b]] == height[x] && ready[b] > x)) {
				ready[b+1] = ready[b]
				b--
			}
			ready[b+1] = x
		}
		var used [4]int
		issued := 0
		rest = rest[:0]
		for _, i := range ready {
			fu := machine.UnitOf(ins[i])
			if i >= horizon || readyAt[i] > cycle || issued >= d.IssueWidth || used[fu] >= d.Units[fu] {
				rest = append(rest, i)
				continue
			}
			s.CycleOf[i] = cycle
			isScheduled[i] = true
			used[fu]++
			issued++
			scheduled++
			for _, e := range succs[i] {
				pending[e.to]--
				if t := cycle + e.lat; t > readyAt[e.to] {
					readyAt[e.to] = t
				}
				if pending[e.to] == 0 {
					rest = append(rest, e.to)
				}
			}
		}
		ready, rest = rest, ready
		if issued > 0 {
			s.Bundles++
		}
		cycle++
	}
	last := 0
	for i := 0; i < n; i++ {
		if s.CycleOf[i] > last {
			last = s.CycleOf[i]
		}
	}
	s.Len = last + d.Lat.Branch
	s.SteadyLen = s.Len + carriedStall(ins, s.CycleOf, s.Len, d, useTags)
	return s
}

// SequentialSchedule models a compiler that performs no reordering (the
// no-O3 configuration): instructions fill issue slots strictly in
// program order, stalling on hazards.
func SequentialSchedule(b *ir.Block, d *machine.Desc) *BlockSched {
	ins := b.Instrs
	n := len(ins)
	s := &BlockSched{CycleOf: make([]int, n)}
	if n == 0 {
		s.Len, s.SteadyLen = 1, 1
		return s
	}
	regReady := make([]int, maxRegOf(ins)+1)
	memReady := 0
	cycle, issued := 0, 0
	var used [4]int
	var useBuf []int
	for i, in := range ins {
		earliest := cycle
		useBuf = in.AppendUses(useBuf[:0])
		for _, r := range useBuf {
			if t := regReady[r]; t > earliest {
				earliest = t
			}
		}
		if in.Op.IsMem() && memReady > earliest {
			earliest = memReady
		}
		fu := machine.UnitOf(in)
		for earliest > cycle || issued >= d.IssueWidth || used[fu] >= d.Units[fu] {
			cycle++
			issued = 0
			used = [4]int{}
		}
		s.CycleOf[i] = cycle
		issued++
		used[fu]++
		if issued == 1 {
			s.Bundles++
		}
		if in.Dst >= 0 {
			regReady[in.Dst] = cycle + d.Latency(in)
		}
		if in.Op == ir.Store {
			memReady = cycle + d.Lat.Store
		}
	}
	s.Len = s.CycleOf[n-1] + d.Lat.Branch
	s.SteadyLen = s.Len + carriedStall(ins, s.CycleOf, s.Len, d, true)
	return s
}

// carriedStall computes the extra stall a back-to-back re-execution of
// the block suffers from loop-carried register dependences: a value
// produced late in iteration i and consumed early in iteration i+1.
func carriedStall(ins []*ir.Instr, cycleOf []int, length int, d *machine.Desc, useTags bool) int {
	nr := maxRegOf(ins) + 1
	defCycle := make([]int, nr)
	defLat := make([]int, nr)
	hasDef := make([]bool, nr)
	for i, in := range ins {
		if in.Dst >= 0 {
			if c := cycleOf[i]; !hasDef[in.Dst] || c >= defCycle[in.Dst] {
				defCycle[in.Dst] = c
				defLat[in.Dst] = d.Latency(in)
				hasDef[in.Dst] = true
			}
		}
	}
	stall := 0
	var useBuf []int
	for i, in := range ins {
		useBuf = in.AppendUses(useBuf[:0])
		for _, r := range useBuf {
			if !hasDef[r] {
				continue
			}
			// Next-iteration use at length+cycleOf[i] needs def+lat.
			if s := defCycle[r] + defLat[r] - (length + cycleOf[i]); s > stall {
				stall = s
			}
		}
	}
	return stall
}

// maxRegOf returns the highest register number a block mentions (-1 if
// none) so per-register state can live in dense slices.
func maxRegOf(ins []*ir.Instr) int {
	maxReg := -1
	for _, in := range ins {
		if in.Dst > maxReg {
			maxReg = in.Dst
		}
		for _, a := range in.Args {
			if a.Kind == ir.KReg && a.Reg > maxReg {
				maxReg = a.Reg
			}
		}
	}
	return maxReg
}
