package backend

import (
	"sort"

	"slms/internal/ir"
	"slms/internal/machine"
	"slms/internal/source"
)

// SpillArray is the reserved array name used for spill slots; the
// simulator treats it like any other array, so spill traffic goes
// through the cache model.
const SpillArray = "__spill"

// AllocResult reports the effect of register allocation.
type AllocResult struct {
	SpilledRegs int
	SpillLoads  int
	SpillStores int
	// MaxLiveInt/Float are the pre-allocation pressure peaks.
	MaxLiveInt   int
	MaxLiveFloat int
}

// Allocate performs linear-scan register allocation for the machine's
// register-file sizes and rewrites the function with spill code for the
// intervals that do not fit. Virtual register names are kept (the
// simulator has no physical file); what matters for timing and energy is
// the inserted spill traffic. It returns statistics about the spills.
func Allocate(f *ir.Func, d *machine.Desc) *AllocResult {
	res := &AllocResult{}
	intervals := liveIntervals(f)

	isFloat := func(r int) bool { return f.RegTypes[r] == source.TFloat }

	// Pressure statistics and linear scan per class.
	spilled := map[int]bool{}
	for _, class := range []bool{false, true} {
		var ivs []interval
		for _, iv := range intervals {
			if isFloat(iv.reg) == class {
				ivs = append(ivs, iv)
			}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
		limit := d.IntRegs
		if class {
			limit = d.FPRegs
		}
		// Reserve two scratch registers per class for spill reloads.
		limit -= 2
		if limit < 1 {
			limit = 1
		}
		// True pressure (no eviction), for reporting.
		maxLive := 0
		{
			var active []interval
			for _, iv := range ivs {
				keep := active[:0]
				for _, a := range active {
					if a.end >= iv.start {
						keep = append(keep, a)
					}
				}
				active = append(keep, iv)
				if len(active) > maxLive {
					maxLive = len(active)
				}
			}
		}
		var active []interval
		for _, iv := range ivs {
			keep := active[:0]
			for _, a := range active {
				if a.end >= iv.start {
					keep = append(keep, a)
				}
			}
			active = append(keep, iv)
			if len(active) > limit {
				// Spill the interval ending last. Scalar home registers can
				// be spilled like any other value: definitions keep writing
				// the home register (and additionally store to the slot), so
				// the register always holds the latest value at Halt.
				worst := 0
				for k := 1; k < len(active); k++ {
					if active[k].end > active[worst].end {
						worst = k
					}
				}
				spilled[active[worst].reg] = true
				active = append(active[:worst], active[worst+1:]...)
			}
		}
		if class {
			res.MaxLiveFloat = maxLive
		} else {
			res.MaxLiveInt = maxLive
		}
	}
	if len(spilled) == 0 {
		return res
	}
	res.SpilledRegs = len(spilled)

	// Assign spill slots in register order: slot numbers decide spill-array
	// addresses, so the assignment must not depend on map iteration order
	// or the cache behaviour of spill traffic (and with it the simulated
	// cycle count) would differ from run to run.
	spilledRegs := make([]int, 0, len(spilled))
	for r := range spilled {
		spilledRegs = append(spilledRegs, r)
	}
	sort.Ints(spilledRegs)
	slot := map[int]int{}
	for _, r := range spilledRegs {
		slot[r] = len(slot)
	}
	if f.Arrays[SpillArray] == nil {
		f.Arrays[SpillArray] = &ir.ArrayInfo{Type: source.TFloat, StaticLen: len(slot)}
	}

	// Rewrite: reload before uses, store after defs.
	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			reloads := map[int]int{}
			for ai, a := range in.Args {
				if a.Kind != ir.KReg || !spilled[a.Reg] {
					continue
				}
				tmp, ok := reloads[a.Reg]
				if !ok {
					tmp = f.NewReg(f.RegTypes[a.Reg])
					reloads[a.Reg] = tmp
					out = append(out, &ir.Instr{
						Op: ir.Load, Type: f.RegTypes[a.Reg], Dst: tmp,
						Args: []ir.Val{ir.ImmI(int64(slot[a.Reg]))},
						Arr:  SpillArray,
					})
					res.SpillLoads++
				}
				in.Args[ai] = ir.R(tmp)
			}
			out = append(out, in)
			if in.Dst >= 0 && spilled[in.Dst] {
				out = append(out, &ir.Instr{
					Op: ir.Store, Type: f.RegTypes[in.Dst], Dst: -1,
					Args: []ir.Val{ir.ImmI(int64(slot[in.Dst])), ir.R(in.Dst)},
					Arr:  SpillArray,
				})
				res.SpillStores++
			}
		}
		// Keep the branch last: spill stores inserted after a trailing
		// branch must move before it.
		if n := len(out); n >= 2 && out[n-2].Op.IsBranch() && !out[n-1].Op.IsBranch() {
			out[n-2], out[n-1] = out[n-1], out[n-2]
		}
		b.Instrs = out
	}
	return res
}

// interval is a live range in global instruction positions.
type interval struct {
	reg        int
	start, end int
}

// liveIntervals computes conservative live intervals over the layout
// order using iterative liveness on the CFG.
func liveIntervals(f *ir.Func) []interval {
	n := len(f.Blocks)
	// Block position ranges.
	startPos := make([]int, n)
	endPos := make([]int, n)
	pos := 0
	for i, b := range f.Blocks {
		startPos[i] = pos
		pos += len(b.Instrs)
		endPos[i] = pos
	}
	// Register sets are dense bitsets over virtual register numbers: the
	// iterative dataflow re-unions them until fixpoint, and map-backed
	// sets dominated register-allocation time and allocation volume.
	nr := f.NumRegs
	words := (nr + 63) / 64
	bits := make([]uint64, 4*n*words) // use | def | liveIn | liveOut
	use := func(i int) []uint64 { return bits[(4*i+0)*words : (4*i+1)*words] }
	def := func(i int) []uint64 { return bits[(4*i+1)*words : (4*i+2)*words] }
	liveIn := func(i int) []uint64 { return bits[(4*i+2)*words : (4*i+3)*words] }
	liveOut := func(i int) []uint64 { return bits[(4*i+3)*words : (4*i+4)*words] }
	has := func(s []uint64, r int) bool { return s[r/64]&(1<<(r%64)) != 0 }
	set := func(s []uint64, r int) { s[r/64] |= 1 << (r % 64) }

	var useBuf []int
	for i, b := range f.Blocks {
		u, d := use(i), def(i)
		for _, in := range b.Instrs {
			useBuf = in.AppendUses(useBuf[:0])
			for _, r := range useBuf {
				if !has(d, r) {
					set(u, r)
				}
			}
			if in.Dst >= 0 {
				set(d, in.Dst)
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out, in, u, d := liveOut(i), liveIn(i), use(i), def(i)
			for w := 0; w < words; w++ {
				var o uint64
				for _, s := range b.Succs(n) {
					o |= liveIn(s)[w]
				}
				nin := (o &^ d[w]) | u[w]
				if o != out[w] || nin != in[w] {
					changed = true
				}
				out[w], in[w] = o, nin
			}
		}
	}
	// Build intervals.
	start := make([]int, nr)
	end := make([]int, nr)
	seen := make([]bool, nr)
	touch := func(r, p int) {
		if !seen[r] {
			seen[r] = true
			start[r], end[r] = p, p
			return
		}
		if p < start[r] {
			start[r] = p
		}
		if p > end[r] {
			end[r] = p
		}
	}
	for i, b := range f.Blocks {
		in, out := liveIn(i), liveOut(i)
		for r := 0; r < nr; r++ {
			if has(in, r) {
				touch(r, startPos[i])
			}
			if has(out, r) {
				touch(r, endPos[i])
			}
		}
		p := startPos[i]
		for _, instr := range b.Instrs {
			useBuf = instr.AppendUses(useBuf[:0])
			for _, r := range useBuf {
				touch(r, p)
			}
			if instr.Dst >= 0 {
				touch(instr.Dst, p)
			}
			p++
		}
	}
	ivs := make([]interval, 0, nr)
	for r := 0; r < nr; r++ {
		if seen[r] {
			ivs = append(ivs, interval{reg: r, start: start[r], end: end[r]})
		}
	}
	return ivs
}
