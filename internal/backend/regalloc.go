package backend

import (
	"sort"

	"slms/internal/ir"
	"slms/internal/machine"
	"slms/internal/source"
)

// SpillArray is the reserved array name used for spill slots; the
// simulator treats it like any other array, so spill traffic goes
// through the cache model.
const SpillArray = "__spill"

// AllocResult reports the effect of register allocation.
type AllocResult struct {
	SpilledRegs int
	SpillLoads  int
	SpillStores int
	// MaxLiveInt/Float are the pre-allocation pressure peaks.
	MaxLiveInt   int
	MaxLiveFloat int
}

// Allocate performs linear-scan register allocation for the machine's
// register-file sizes and rewrites the function with spill code for the
// intervals that do not fit. Virtual register names are kept (the
// simulator has no physical file); what matters for timing and energy is
// the inserted spill traffic. It returns statistics about the spills.
func Allocate(f *ir.Func, d *machine.Desc) *AllocResult {
	res := &AllocResult{}
	intervals := liveIntervals(f)

	isFloat := func(r int) bool { return f.RegTypes[r] == source.TFloat }

	// Pressure statistics and linear scan per class.
	spilled := map[int]bool{}
	for _, class := range []bool{false, true} {
		var ivs []interval
		for _, iv := range intervals {
			if isFloat(iv.reg) == class {
				ivs = append(ivs, iv)
			}
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
		limit := d.IntRegs
		if class {
			limit = d.FPRegs
		}
		// Reserve two scratch registers per class for spill reloads.
		limit -= 2
		if limit < 1 {
			limit = 1
		}
		// True pressure (no eviction), for reporting.
		maxLive := 0
		{
			var active []interval
			for _, iv := range ivs {
				keep := active[:0]
				for _, a := range active {
					if a.end >= iv.start {
						keep = append(keep, a)
					}
				}
				active = append(keep, iv)
				if len(active) > maxLive {
					maxLive = len(active)
				}
			}
		}
		var active []interval
		for _, iv := range ivs {
			keep := active[:0]
			for _, a := range active {
				if a.end >= iv.start {
					keep = append(keep, a)
				}
			}
			active = append(keep, iv)
			if len(active) > limit {
				// Spill the interval ending last. Scalar home registers can
				// be spilled like any other value: definitions keep writing
				// the home register (and additionally store to the slot), so
				// the register always holds the latest value at Halt.
				worst := 0
				for k := 1; k < len(active); k++ {
					if active[k].end > active[worst].end {
						worst = k
					}
				}
				spilled[active[worst].reg] = true
				active = append(active[:worst], active[worst+1:]...)
			}
		}
		if class {
			res.MaxLiveFloat = maxLive
		} else {
			res.MaxLiveInt = maxLive
		}
	}
	if len(spilled) == 0 {
		return res
	}
	res.SpilledRegs = len(spilled)

	// Assign spill slots.
	slot := map[int]int{}
	for r := range spilled {
		slot[r] = len(slot)
	}
	if f.Arrays[SpillArray] == nil {
		f.Arrays[SpillArray] = &ir.ArrayInfo{Type: source.TFloat, StaticLen: len(slot)}
	}

	// Rewrite: reload before uses, store after defs.
	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			reloads := map[int]int{}
			for ai, a := range in.Args {
				if a.Kind != ir.KReg || !spilled[a.Reg] {
					continue
				}
				tmp, ok := reloads[a.Reg]
				if !ok {
					tmp = f.NewReg(f.RegTypes[a.Reg])
					reloads[a.Reg] = tmp
					out = append(out, &ir.Instr{
						Op: ir.Load, Type: f.RegTypes[a.Reg], Dst: tmp,
						Args: []ir.Val{ir.ImmI(int64(slot[a.Reg]))},
						Arr:  SpillArray,
					})
					res.SpillLoads++
				}
				in.Args[ai] = ir.R(tmp)
			}
			out = append(out, in)
			if in.Dst >= 0 && spilled[in.Dst] {
				out = append(out, &ir.Instr{
					Op: ir.Store, Type: f.RegTypes[in.Dst], Dst: -1,
					Args: []ir.Val{ir.ImmI(int64(slot[in.Dst])), ir.R(in.Dst)},
					Arr:  SpillArray,
				})
				res.SpillStores++
			}
		}
		// Keep the branch last: spill stores inserted after a trailing
		// branch must move before it.
		if n := len(out); n >= 2 && out[n-2].Op.IsBranch() && !out[n-1].Op.IsBranch() {
			out[n-2], out[n-1] = out[n-1], out[n-2]
		}
		b.Instrs = out
	}
	return res
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// interval is a live range in global instruction positions.
type interval struct {
	reg        int
	start, end int
}

// liveIntervals computes conservative live intervals over the layout
// order using iterative liveness on the CFG.
func liveIntervals(f *ir.Func) []interval {
	n := len(f.Blocks)
	// Block position ranges.
	startPos := make([]int, n)
	endPos := make([]int, n)
	pos := 0
	for i, b := range f.Blocks {
		startPos[i] = pos
		pos += len(b.Instrs)
		endPos[i] = pos
	}
	use := make([]map[int]bool, n)
	def := make([]map[int]bool, n)
	for i, b := range f.Blocks {
		use[i] = map[int]bool{}
		def[i] = map[int]bool{}
		for _, in := range b.Instrs {
			for _, r := range in.Uses() {
				if !def[i][r] {
					use[i][r] = true
				}
			}
			if in.Dst >= 0 {
				def[i][in.Dst] = true
			}
		}
	}
	liveIn := make([]map[int]bool, n)
	liveOut := make([]map[int]bool, n)
	for i := range liveIn {
		liveIn[i] = map[int]bool{}
		liveOut[i] = map[int]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := map[int]bool{}
			for _, s := range b.Succs(n) {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			in := map[int]bool{}
			for r := range out {
				if !def[i][r] {
					in[r] = true
				}
			}
			for r := range use[i] {
				in[r] = true
			}
			if !sameSet(out, liveOut[i]) || !sameSet(in, liveIn[i]) {
				changed = true
			}
			liveOut[i], liveIn[i] = out, in
		}
	}
	// Build intervals.
	start := map[int]int{}
	end := map[int]int{}
	touch := func(r, p int) {
		if s, ok := start[r]; !ok || p < s {
			start[r] = p
		}
		if e, ok := end[r]; !ok || p > e {
			end[r] = p
		}
	}
	for i, b := range f.Blocks {
		for r := range liveIn[i] {
			touch(r, startPos[i])
		}
		for r := range liveOut[i] {
			touch(r, endPos[i])
		}
		p := startPos[i]
		for _, in := range b.Instrs {
			for _, r := range in.Uses() {
				touch(r, p)
			}
			if in.Dst >= 0 {
				touch(in.Dst, p)
			}
			p++
		}
	}
	var ivs []interval
	for reg, s := range start {
		ivs = append(ivs, interval{reg: reg, start: s, end: end[reg]})
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].reg < ivs[b].reg })
	return ivs
}
