package backend

import (
	"fmt"

	"slms/internal/ir"
	"slms/internal/source"
)

// LocalCSE performs local value numbering within each basic block on
// pure integer/address arithmetic (Add/Sub/Mul/Neg/Cvt/Mov of int
// operands): repeated computations of the same value are replaced by a
// copy of the first result. Every compiler the paper evaluates performs
// at least this much cleanup; without it, the shifted array subscripts
// SLMS introduces (A[i+2], A[i+3], ...) would be charged one extra add
// per reference and bias the comparison against SLMS.
//
// Only int-typed pure ops participate: float arithmetic is never touched
// (preserving rounding behaviour exactly), and loads/stores/calls are
// barriers for nothing — the pass only tracks register definitions.
func LocalCSE(f *ir.Func) int {
	removed := 0
	for _, b := range f.Blocks {
		removed += cseBlock(f, b)
	}
	return removed
}

func cseBlock(f *ir.Func, b *ir.Block) int {
	avail := map[string]int{} // value key -> register holding it
	keyOf := map[int]string{} // register -> the key it currently holds
	removed := 0

	kill := func(reg int) {
		if k, ok := keyOf[reg]; ok {
			delete(avail, k)
			delete(keyOf, reg)
		}
		// Any key mentioning reg as an operand is stale.
		for k, r := range avail {
			if mentionsReg(k, reg) {
				delete(avail, k)
				delete(keyOf, r)
			}
		}
	}

	for _, in := range b.Instrs {
		if in.Dst < 0 {
			continue
		}
		if key, ok := pureIntKey(in); ok {
			if src, hit := avail[key]; hit && src != in.Dst {
				// Replace with a register copy; the scheduler treats Mov
				// as a 1-cycle int op, and steady-state it often folds
				// into existing slots.
				kill(in.Dst)
				in.Op = ir.Mov
				in.Type = source.TInt
				in.Args = []ir.Val{ir.R(src)}
				removed++
				continue
			}
			kill(in.Dst)
			avail[key] = in.Dst
			keyOf[in.Dst] = key
			continue
		}
		kill(in.Dst)
	}
	return removed
}

// pureIntKey builds a value-numbering key for pure int ops whose
// operands are immediates or registers.
func pureIntKey(in *ir.Instr) (string, bool) {
	if in.Type != source.TInt {
		return "", false
	}
	switch in.Op {
	case ir.Add, ir.Sub, ir.Mul, ir.Neg, ir.Mov:
	default:
		return "", false
	}
	ops := make([]string, 0, len(in.Args))
	for _, a := range in.Args {
		switch a.Kind {
		case ir.KReg:
			ops = append(ops, fmt.Sprintf("r%d", a.Reg))
		case ir.KInt:
			ops = append(ops, fmt.Sprintf("#%d", a.I))
		default:
			return "", false
		}
	}
	// Canonicalize commutative operand order.
	if (in.Op == ir.Add || in.Op == ir.Mul) && len(ops) == 2 && ops[1] < ops[0] {
		ops[0], ops[1] = ops[1], ops[0]
	}
	key := in.Op.String()
	for _, o := range ops {
		key += "|" + o
	}
	return key, true
}

func mentionsReg(key string, reg int) bool {
	needle := fmt.Sprintf("|r%d", reg)
	// Exact operand match: the operand is followed by '|' or end.
	for i := 0; i+len(needle) <= len(key); i++ {
		if key[i:i+len(needle)] == needle {
			end := i + len(needle)
			if end == len(key) || key[end] == '|' {
				return true
			}
		}
	}
	return false
}
