package backend

import (
	"slms/internal/ir"
	"slms/internal/source"
)

// LocalCSE performs local value numbering within each basic block on
// pure integer/address arithmetic (Add/Sub/Mul/Neg/Cvt/Mov of int
// operands): repeated computations of the same value are replaced by a
// copy of the first result. Every compiler the paper evaluates performs
// at least this much cleanup; without it, the shifted array subscripts
// SLMS introduces (A[i+2], A[i+3], ...) would be charged one extra add
// per reference and bias the comparison against SLMS.
//
// Only int-typed pure ops participate: float arithmetic is never touched
// (preserving rounding behaviour exactly), and loads/stores/calls are
// barriers for nothing — the pass only tracks register definitions.
func LocalCSE(f *ir.Func) int {
	removed := 0
	for _, b := range f.Blocks {
		removed += cseBlock(f, b)
	}
	return removed
}

// cseOperand is one operand of a value-numbering key: a register or an
// int immediate.
type cseOperand struct {
	reg bool
	v   int64 // register number or immediate value
}

// cseKey identifies a pure int computation. It is a comparable struct so
// value numbering runs on map lookups instead of string building.
type cseKey struct {
	op    ir.Op
	nargs int8
	a, b  cseOperand
}

func cseBlock(f *ir.Func, b *ir.Block) int {
	avail := map[cseKey]int{} // value key -> register holding it
	keyOf := map[int]cseKey{} // register -> the key it currently holds
	// usedBy indexes keys by the registers they mention as operands, so a
	// register redefinition invalidates exactly the dependent keys instead
	// of scanning every available key. Entries may be stale (the key was
	// already dropped); staleness is checked against avail on use.
	usedBy := map[int][]cseKey{}
	removed := 0

	kill := func(reg int) {
		if k, ok := keyOf[reg]; ok {
			delete(avail, k)
			delete(keyOf, reg)
		}
		// Any key mentioning reg as an operand is stale.
		for _, k := range usedBy[reg] {
			if r, ok := avail[k]; ok {
				delete(avail, k)
				delete(keyOf, r)
			}
		}
		delete(usedBy, reg)
	}

	record := func(key cseKey, dst int) {
		avail[key] = dst
		keyOf[dst] = key
		if key.a.reg {
			usedBy[int(key.a.v)] = append(usedBy[int(key.a.v)], key)
		}
		if key.nargs > 1 && key.b.reg {
			usedBy[int(key.b.v)] = append(usedBy[int(key.b.v)], key)
		}
	}

	for _, in := range b.Instrs {
		if in.Dst < 0 {
			continue
		}
		if key, ok := pureIntKey(in); ok {
			if src, hit := avail[key]; hit && src != in.Dst {
				// Replace with a register copy; the scheduler treats Mov
				// as a 1-cycle int op, and steady-state it often folds
				// into existing slots.
				kill(in.Dst)
				in.Op = ir.Mov
				in.Type = source.TInt
				in.Args = []ir.Val{ir.R(src)}
				removed++
				continue
			}
			kill(in.Dst)
			record(key, in.Dst)
			continue
		}
		kill(in.Dst)
	}
	return removed
}

// pureIntKey builds a value-numbering key for pure int ops whose
// operands are immediates or registers.
func pureIntKey(in *ir.Instr) (cseKey, bool) {
	if in.Type != source.TInt {
		return cseKey{}, false
	}
	switch in.Op {
	case ir.Add, ir.Sub, ir.Mul, ir.Neg, ir.Mov:
	default:
		return cseKey{}, false
	}
	var ops [2]cseOperand
	if len(in.Args) > 2 {
		return cseKey{}, false
	}
	for i, a := range in.Args {
		switch a.Kind {
		case ir.KReg:
			ops[i] = cseOperand{reg: true, v: int64(a.Reg)}
		case ir.KInt:
			ops[i] = cseOperand{reg: false, v: a.I}
		default:
			return cseKey{}, false
		}
	}
	// Canonicalize commutative operand order (any consistent total order
	// works: both orderings denote the same value).
	if (in.Op == ir.Add || in.Op == ir.Mul) && len(in.Args) == 2 && operandLess(ops[1], ops[0]) {
		ops[0], ops[1] = ops[1], ops[0]
	}
	return cseKey{op: in.Op, nargs: int8(len(in.Args)), a: ops[0], b: ops[1]}, true
}

func operandLess(x, y cseOperand) bool {
	if x.reg != y.reg {
		return !x.reg // immediates sort before registers
	}
	return x.v < y.v
}
