// Benchmarks regenerating every figure of the paper's evaluation
// (Figures 14–22 and the two in-text case studies), plus component
// micro-benchmarks for the transformation and the simulator. Run with
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports the figure's headline number (the
// geometric-mean SLMS speedup over the applied loops, or the
// case-study's bundle/cycle counts) as a custom metric so a benchmark
// run doubles as a reproduction log.
package slms_test

import (
	"math"
	"testing"

	"slms/internal/bench"
	"slms/internal/core"
	"slms/internal/ddg"
	"slms/internal/dep"
	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/mii"
	"slms/internal/pipeline"
	"slms/internal/sem"
	"slms/internal/source"
)

// benchFigure runs one figure generator per iteration and reports its
// geometric-mean value over the applied rows.
func benchFigure(b *testing.B, gen func() (*bench.Figure, error)) {
	b.Helper()
	var last *bench.Figure
	for i := 0; i < b.N; i++ {
		f, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	prod, n := 1.0, 0
	for _, r := range last.Rows {
		if r.Applied && r.Value > 0 {
			prod *= r.Value
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(math.Pow(prod, 1/float64(n)), "geomean-ratio")
		b.ReportMetric(float64(n), "loops-applied")
	}
}

// ---- one benchmark per evaluation figure ----

func BenchmarkFig14_LivLinGCC(b *testing.B)   { benchFigure(b, bench.Figure14) }
func BenchmarkFig15_StoneNASGCC(b *testing.B) { benchFigure(b, bench.Figure15) }
func BenchmarkFig16_CloseO3Gap(b *testing.B)  { benchFigure(b, bench.Figure16) }
func BenchmarkFig17_Superscalar(b *testing.B) { benchFigure(b, bench.Figure17) }
func BenchmarkFig18_LivLinICC(b *testing.B)   { benchFigure(b, bench.Figure18) }
func BenchmarkFig19_StoneNASICC(b *testing.B) { benchFigure(b, bench.Figure19) }
func BenchmarkFig20_XLC(b *testing.B)         { benchFigure(b, bench.Figure20) }
func BenchmarkFig21_ARMPower(b *testing.B)    { benchFigure(b, bench.Figure21) }
func BenchmarkFig22_ARMCycles(b *testing.B)   { benchFigure(b, bench.Figure22) }

func BenchmarkCaseA_Kernel8Bundles(b *testing.B) {
	var last *bench.Figure
	for i := 0; i < b.N; i++ {
		f, err := bench.CaseA()
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.ReportMetric(last.Rows[0].Value, "bundles-original")
	b.ReportMetric(last.Rows[0].Value2, "bundles-slms")
}

func BenchmarkCaseB_FloatBundles(b *testing.B) {
	var last *bench.Figure
	for i := 0; i < b.N; i++ {
		f, err := bench.CaseB()
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	b.ReportMetric(last.Rows[0].Value, "cyc/iter-original")
	b.ReportMetric(last.Rows[0].Value2, "cyc/iter-slms")
}

// BenchmarkFilter_MemRefRatio measures the §4 bad-case filter on the
// paper's swap loop (it must reject) and a compute-heavy loop (accept).
func BenchmarkFilter_MemRefRatio(b *testing.B) {
	swap := source.MustParse(`
		float X[20][20];
		int i1 = 1; int j1 = 2;
		float CT = 0.0;
		for (k = 0; k < 20; k++) {
			CT = X[k][i1];
			X[k][i1] = X[k][j1] * 2.0;
			X[k][j1] = CT;
		}
	`)
	rejected := 0
	for i := 0; i < b.N; i++ {
		_, results, err := core.TransformProgram(swap, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.Applied {
				rejected++
			}
		}
	}
	b.ReportMetric(float64(rejected)/float64(b.N), "loops-filtered")
}

// BenchmarkSec6_Combos measures the §6 interaction: neither half of the
// coupled loop pair can be modulo scheduled alone; after fusion SLMS
// succeeds with the paper's II = 3. The reported metrics are the II and
// the cycle ratio (the claim is the *enabling* effect — the II=3
// schedule itself is roughly timing-neutral on these machines, since
// list scheduling already covers the fused body's parallelism).
func BenchmarkSec6_Combos(b *testing.B) {
	src := `
		int n = 200;
		float A[210]; float B[210]; float C[210];
		float t = 0.0; float q = 0.0;
		for (i = 1; i < n; i++) {
			t = A[i-1];
			B[i] = B[i] + t;
			A[i] = t + B[i];
			q = C[i-1];
			B[i] = B[i] + q;
			C[i] = q * B[i];
		}
	`
	prog := source.MustParse(src)
	seed := func(env *interp.Env) {
		mk := func(base float64) []float64 {
			v := make([]float64, 210)
			for i := range v {
				v[i] = base + 0.01*float64(i)
			}
			return v
		}
		env.SetFloatArray("A", mk(1))
		env.SetFloatArray("B", mk(2))
		env.SetFloatArray("C", mk(0.5))
	}
	var speedup float64
	var ii int64
	for i := 0; i < b.N; i++ {
		out, err := pipeline.RunExperiment(prog, pipeline.Experiment{
			Machine: machine.IA64Like(), Compiler: pipeline.WeakO3, SLMS: core.DefaultOptions(),
		}, seed)
		if err != nil {
			b.Fatal(err)
		}
		speedup = out.Speedup
		for _, r := range out.Results {
			if r.Applied && r.MIs == 6 {
				ii = r.II
			}
		}
	}
	b.ReportMetric(speedup, "fused-loop-speedup")
	b.ReportMetric(float64(ii), "fused-loop-II")
}

// ---- component micro-benchmarks ----

func BenchmarkSLMSTransform(b *testing.B) {
	src := `
		int n = 100;
		float A[120];
		float t = 0.0;
		for (i = 2; i < n; i++) {
			t = A[i+1];
			A[i] = A[i-1] + A[i-2] + t + A[i+2];
		}
	`
	prog := source.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.TransformProgram(prog, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDependenceAnalysis(b *testing.B) {
	k := bench.Lookup("kernel8")
	prog := source.MustParse(k.Source)
	info, err := sem.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	var loop *source.For
	for _, s := range prog.Stmts {
		if f, ok := s.(*source.For); ok {
			loop = f
		}
	}
	l, err := sem.Canonicalize(loop)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Analyze(loop.Body.Stmts, l.Var, info.Table, dep.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIISearch(b *testing.B) {
	k := bench.Lookup("kernel8")
	prog := source.MustParse(k.Source)
	info, _ := sem.Check(prog)
	var loop *source.For
	for _, s := range prog.Stmts {
		if f, ok := s.(*source.For); ok {
			loop = f
		}
	}
	l, _ := sem.Canonicalize(loop)
	an, err := dep.Analyze(loop.Body.Stmts, l.Var, info.Table, dep.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := ddg.Build(an, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mii.Find(g, mii.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorVLIW(b *testing.B) {
	k := bench.Lookup("kernel1")
	prog := source.MustParse(k.Source)
	d := machine.IA64Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := interp.NewEnv()
		k.Setup(env)
		if _, _, err := pipeline.Run(prog, d, pipeline.WeakO3, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorARM(b *testing.B) {
	k := bench.Lookup("kernel1")
	prog := source.MustParse(k.Source)
	d := machine.ARM7Like()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := interp.NewEnv()
		k.Setup(env)
		if _, _, err := pipeline.Run(prog, d, pipeline.WeakO3, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreter(b *testing.B) {
	k := bench.Lookup("kernel1")
	prog := source.MustParse(k.Source)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := interp.NewEnv()
		k.Setup(env)
		if err := interp.Run(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks (design choices called out in DESIGN.md) ----

func BenchmarkAblationFilter(b *testing.B)    { benchFigure(b, bench.AblationFilter) }
func BenchmarkAblationExpansion(b *testing.B) { benchFigure(b, bench.AblationExpansion) }
func BenchmarkAblationTags(b *testing.B)      { benchFigure(b, bench.AblationTags) }
func BenchmarkAblationGuard(b *testing.B)     { benchFigure(b, bench.AblationGuard) }
func BenchmarkAblationWindow(b *testing.B)    { benchFigure(b, bench.AblationWindow) }
