GO ?= go

.PHONY: all build test race vet bench figures profile clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Single-pass smoke of every Benchmark* (no statistics); use
# `go test -bench . -benchtime 10x ./internal/bench/` for real numbers.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./internal/bench/ ./internal/pipeline/

# Regenerate all paper figures and the BENCH_1.json harness stats.
figures:
	$(GO) run ./cmd/slmsbench

# Figures with CPU + heap profiles for perf work.
profile:
	$(GO) run ./cmd/slmsbench -cpuprofile cpu.pprof -memprofile mem.pprof -json ""

clean:
	rm -f cpu.pprof mem.pprof
