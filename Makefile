GO ?= go

# Pinned staticcheck release (honnef.co/go/tools). `make lint` prefers a
# staticcheck binary on PATH, falls back to `go run` of the pinned
# version, and degrades to vet-only when neither is available (offline).
STATICCHECK_VERSION ?= 2025.1.1
STATICCHECK_PKG = honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

.PHONY: all build test race vet lint fuzz bench bench-parallel figures profile cycleprofile gate baseline trajectory serve loadsmoke clean

# The committed gate baseline (a two-leg slms-bench-legs/v1 record).
SLMS_GATE_BASELINE ?= BENCH_7.json

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif $(GO) run $(STATICCHECK_PKG) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK_PKG) ./...; \
	else \
		echo "lint: staticcheck $(STATICCHECK_VERSION) unavailable (no binary on PATH, module fetch failed); vet-only"; \
	fi

# Short fuzzing pass over the parser and the §4 filter (CI runs the
# same; leave -fuzztime off for a long local session).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParser -fuzztime=10s ./internal/source/
	$(GO) test -run=NONE -fuzz=FuzzFilter -fuzztime=10s ./internal/core/
	$(GO) test -run=NONE -fuzz=FuzzRequestDecode -fuzztime=10s ./internal/server/
	$(GO) test -run=NONE -fuzz=FuzzParseTraceparent -fuzztime=10s ./internal/obs/
	$(GO) test -run=NONE -fuzz=FuzzExactScheduler -fuzztime=10s ./internal/sched/exact/

# Single-pass smoke of every Benchmark* (no statistics); use
# `go test -bench . -benchtime 10x ./internal/bench/` for real numbers.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./internal/bench/ ./internal/pipeline/ ./internal/server/

# The two-leg trajectory: full suite serial then parallel, cold caches
# each, byte-identical figures enforced; writes BENCH_legs.json.
bench-parallel:
	$(GO) run ./cmd/slmsbench -legs -json BENCH_legs.json

# Regenerate all paper figures and the BENCH_1.json harness stats.
figures:
	$(GO) run ./cmd/slmsbench

# Figures with CPU + heap profiles for perf work.
profile:
	$(GO) run ./cmd/slmsbench -cpuprofile cpu.pprof -memprofile mem.pprof -json ""

# Simulated-cycle attribution for the whole suite: where every cycle of
# every kernel went (issue, hazard, miss, fill, prologue/epilogue,
# branch). Explore with `go tool pprof -http=: cycles.pb.gz`.
cycleprofile:
	$(GO) run ./cmd/slmsbench -q -profile cycles.pb.gz -json ""

# The CI regression gates against $(SLMS_GATE_BASELINE): per-kernel
# simulated cycles (deterministic, >5% growth fails) and parallel
# throughput/scaling (cycles/second of the parallel leg; the scaling
# floor is skipped on single-proc hosts).
gate:
	SLMS_REGRESSION_GATE=1 SLMS_GATE_BASELINE=$(abspath $(SLMS_GATE_BASELINE)) \
		$(GO) test -run TestRegressionGateAgainstBaseline -v ./internal/bench/compare/
	SLMS_THROUGHPUT_GATE=1 SLMS_GATE_BASELINE=$(abspath $(SLMS_GATE_BASELINE)) \
		$(GO) test -run TestThroughputGateAgainstBaseline -v ./internal/bench/compare/
	$(GO) test -run TestPrecisionGate -v ./internal/bench/

# Re-record the regression-gate baseline after an intentional
# scheduling or simulator change (cycles are deterministic, so this is
# reproducible on any machine; the throughput leg is host-specific but
# gated with wide thresholds).
baseline:
	$(GO) run ./cmd/slmsbench -q -legs -json $(SLMS_GATE_BASELINE) > /dev/null

# Fold every committed BENCH_*.json snapshot into one time-series
# report (markdown to stdout, TRAJECTORY.json on disk); exits 1 when
# any adjacent pair regressed. CI uploads both as artifacts.
trajectory:
	$(GO) run ./cmd/slmsbench -trajectory -json TRAJECTORY.json

# Run the compilation service on the default address (127.0.0.1:8347).
serve:
	$(GO) run ./cmd/slmsd

# The CI load-smoke battery: cached-path speedup and p99 latency budget
# on a live server, plus drain-under-load losing zero admitted requests.
loadsmoke:
	SLMS_LOAD_SMOKE=1 $(GO) test -run TestLoadSmoke -v ./internal/server/

clean:
	rm -f cpu.pprof mem.pprof cycles.pb.gz suite-cycles.pb.gz
