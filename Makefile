GO ?= go

# Pinned staticcheck release (honnef.co/go/tools). `make lint` prefers a
# staticcheck binary on PATH, falls back to `go run` of the pinned
# version, and degrades to vet-only when neither is available (offline).
STATICCHECK_VERSION ?= 2025.1.1
STATICCHECK_PKG = honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

.PHONY: all build test race vet lint fuzz bench figures profile clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif $(GO) run $(STATICCHECK_PKG) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK_PKG) ./...; \
	else \
		echo "lint: staticcheck $(STATICCHECK_VERSION) unavailable (no binary on PATH, module fetch failed); vet-only"; \
	fi

# Short fuzzing pass over the parser and the §4 filter (CI runs the
# same; leave -fuzztime off for a long local session).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParser -fuzztime=10s ./internal/source/
	$(GO) test -run=NONE -fuzz=FuzzFilter -fuzztime=10s ./internal/core/

# Single-pass smoke of every Benchmark* (no statistics); use
# `go test -bench . -benchtime 10x ./internal/bench/` for real numbers.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./internal/bench/ ./internal/pipeline/

# Regenerate all paper figures and the BENCH_1.json harness stats.
figures:
	$(GO) run ./cmd/slmsbench

# Figures with CPU + heap profiles for perf work.
profile:
	$(GO) run ./cmd/slmsbench -cpuprofile cpu.pprof -memprofile mem.pprof -json ""

clean:
	rm -f cpu.pprof mem.pprof
