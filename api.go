package slms

import (
	"slms/internal/core"
	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/pipeline"
	"slms/internal/slc"
	"slms/internal/source"
)

// This file is the public API: thin aliases and convenience wrappers
// over the internal packages, so that downstream users can consume the
// library without reaching into internal/ (which Go forbids anyway).

// Program is a parsed mini-C compilation unit.
type Program = source.Program

// Options configures the SLMS transformation (see DefaultOptions).
type Options = core.Options

// Result describes one SLMS application (II, stages, unroll factor, the
// replacement statement, and the decision log).
type Result = core.Result

// SLCOptions configures the full source-level-compiler driver.
type SLCOptions = slc.Options

// SLCResult is the driver outcome: the optimized program plus the
// per-loop action transcript.
type SLCResult = slc.Result

// Machine is a simulated target machine description.
type Machine = machine.Desc

// Compiler is a simulated final-compiler configuration.
type Compiler = pipeline.Compiler

// Metrics is a simulation outcome (cycles, energy, instruction and
// memory counts).
type Metrics = pipeline.Outcome

// Env carries program inputs and outputs for execution.
type Env = interp.Env

// Parse parses mini-C source text.
func Parse(src string) (*Program, error) { return source.Parse(src) }

// Print renders a program back to (re-parseable) source text.
func Print(p *Program) string { return source.Print(p) }

// PrintPaper renders a program with par groups in the paper's
// `a; || b;` style.
func PrintPaper(p *Program) string { return source.PrintPaper(p) }

// DefaultOptions returns the paper's SLMS configuration: bad-case filter
// at 0.85, modulo variable expansion, guarded output.
func DefaultOptions() Options { return core.DefaultOptions() }

// Transform applies source-level modulo scheduling to every innermost
// canonical loop of the program and returns the transformed program with
// one Result per loop encountered. The input is not modified.
func Transform(p *Program, opts Options) (*Program, []*Result, error) {
	return core.TransformProgram(p, opts)
}

// TransformSource is the string-to-string convenience form of Transform.
func TransformSource(src string, opts Options) (string, []*Result, error) {
	p, err := source.Parse(src)
	if err != nil {
		return "", nil, err
	}
	out, results, err := core.TransformProgram(p, opts)
	if err != nil {
		return "", nil, err
	}
	return source.Print(out), results, nil
}

// DefaultSLCOptions enables the whole source-level compiler: SLMS plus
// fusion, interchange, downward-loop mirroring, reduction splitting and
// while-loop pipelining as enabling transformations.
func DefaultSLCOptions() SLCOptions { return slc.DefaultOptions() }

// Optimize runs the source-level compiler driver over the program.
func Optimize(p *Program, opts SLCOptions) (*SLCResult, error) {
	return slc.Optimize(p, opts)
}

// Run executes the program in the reference interpreter against env
// (pre-load inputs with env.SetFloatArray / SetScalar; results are read
// back from env).
func Run(p *Program, env *Env) error { return interp.Run(p, env) }

// NewEnv returns an empty execution environment.
func NewEnv() *Env { return interp.NewEnv() }

// Simulated machines of the paper's evaluation.
func MachineIA64() *Machine    { return machine.IA64Like() }
func MachinePower4() *Machine  { return machine.Power4Like() }
func MachinePentium() *Machine { return machine.PentiumLike() }
func MachineARM7() *Machine    { return machine.ARM7Like() }

// Simulated final-compiler configurations.
var (
	CompilerWeak   = pipeline.WeakO3   // GCC-like: list scheduling only
	CompilerStrong = pipeline.StrongO3 // ICC/XLC-like: + machine-level modulo scheduling
)

// Measure compiles and simulates the program twice — as written and
// after SLMS — on the given machine/compiler pair, verifies both compute
// identical results, and reports cycles, energy and the speedup. seed
// (optional) pre-loads inputs into a fresh environment for each run.
func Measure(p *Program, m *Machine, cc Compiler, opts Options, seed func(*Env)) (*Metrics, error) {
	return pipeline.RunExperiment(p, pipeline.Experiment{
		Machine: m, Compiler: cc, SLMS: opts,
	}, seed)
}
