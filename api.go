package slms

import (
	"context"
	"io"

	"slms/internal/core"
	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/prof"
	"slms/internal/slc"
	"slms/internal/source"
)

// This file is the public API: thin aliases and convenience wrappers
// over the internal packages, so that downstream users can consume the
// library without reaching into internal/ (which Go forbids anyway).

// Program is a parsed mini-C compilation unit.
type Program = source.Program

// Options configures the SLMS transformation (see DefaultOptions).
type Options = core.Options

// Result describes one SLMS application (II, stages, unroll factor, the
// replacement statement, and the decision log).
type Result = core.Result

// SLCOptions configures the full source-level-compiler driver.
type SLCOptions = slc.Options

// SLCResult is the driver outcome: the optimized program plus the
// per-loop action transcript.
type SLCResult = slc.Result

// Machine is a simulated target machine description.
type Machine = machine.Desc

// Compiler is a simulated final-compiler configuration.
type Compiler = pipeline.Compiler

// Metrics is a simulation outcome (cycles, energy, instruction and
// memory counts).
type Metrics = pipeline.Outcome

// Env carries program inputs and outputs for execution.
type Env = interp.Env

// Parse parses mini-C source text.
func Parse(src string) (*Program, error) { return source.Parse(src) }

// Print renders a program back to (re-parseable) source text.
func Print(p *Program) string { return source.Print(p) }

// PrintPaper renders a program with par groups in the paper's
// `a; || b;` style.
func PrintPaper(p *Program) string { return source.PrintPaper(p) }

// DefaultOptions returns the paper's SLMS configuration: bad-case filter
// at 0.85, modulo variable expansion, guarded output.
func DefaultOptions() Options { return core.DefaultOptions() }

// Transform applies source-level modulo scheduling to every innermost
// canonical loop of the program and returns the transformed program with
// one Result per loop encountered. The input is not modified.
func Transform(p *Program, opts Options) (*Program, []*Result, error) {
	return core.TransformProgram(p, opts)
}

// TransformSource is the string-to-string convenience form of Transform.
func TransformSource(src string, opts Options) (string, []*Result, error) {
	p, err := source.Parse(src)
	if err != nil {
		return "", nil, err
	}
	out, results, err := core.TransformProgram(p, opts)
	if err != nil {
		return "", nil, err
	}
	return source.Print(out), results, nil
}

// DefaultSLCOptions enables the whole source-level compiler: SLMS plus
// fusion, interchange, downward-loop mirroring, reduction splitting and
// while-loop pipelining as enabling transformations.
func DefaultSLCOptions() SLCOptions { return slc.DefaultOptions() }

// Optimize runs the source-level compiler driver over the program.
func Optimize(p *Program, opts SLCOptions) (*SLCResult, error) {
	return slc.Optimize(p, opts)
}

// Run executes the program in the reference interpreter against env
// (pre-load inputs with env.SetFloatArray / SetScalar; results are read
// back from env).
func Run(p *Program, env *Env) error { return interp.Run(p, env) }

// NewEnv returns an empty execution environment.
func NewEnv() *Env { return interp.NewEnv() }

// Simulated machines of the paper's evaluation.
func MachineIA64() *Machine    { return machine.IA64Like() }
func MachinePower4() *Machine  { return machine.Power4Like() }
func MachinePentium() *Machine { return machine.PentiumLike() }
func MachineARM7() *Machine    { return machine.ARM7Like() }

// Simulated final-compiler configurations.
var (
	CompilerWeak   = pipeline.WeakO3   // GCC-like: list scheduling only
	CompilerStrong = pipeline.StrongO3 // ICC/XLC-like: + machine-level modulo scheduling
)

// Measure compiles and simulates the program twice — as written and
// after SLMS — on the given machine/compiler pair, verifies both compute
// identical results, and reports cycles, energy and the speedup. seed
// (optional) pre-loads inputs into a fresh environment for each run.
func Measure(p *Program, m *Machine, cc Compiler, opts Options, seed func(*Env)) (*Metrics, error) {
	return pipeline.RunExperiment(p, pipeline.Experiment{
		Machine: m, Compiler: cc, SLMS: opts,
	}, seed)
}

// MeasureCtx is Measure honoring a context: the simulator polls the
// deadline every few thousand simulated instructions and uncached
// compilation checks it between scheduling rounds, so ctx bounds the
// whole measurement. The returned error wraps ctx.Err() on
// cancellation (test with errors.Is(err, context.DeadlineExceeded)).
func MeasureCtx(ctx context.Context, p *Program, m *Machine, cc Compiler, opts Options, seed func(*Env)) (*Metrics, error) {
	outs, errs, err := pipeline.RunExperimentsCtx(ctx, nil, p, m, cc, []core.Options{opts}, seed)
	if err != nil {
		return nil, err
	}
	if errs[0] != nil {
		return nil, errs[0]
	}
	return outs[0], nil
}

// Telemetry: the library mirrors the CLIs' -trace/-metrics surface.
// StartTrace/StopTrace bracket a traced region; while a trace is active
// every Transform/Measure call records phase spans and per-loop
// decision records at near-zero overhead (disabled, the
// instrumentation is a single atomic load).

// Tracer collects pipeline spans and per-loop decision records.
type Tracer = obs.Tracer

// Decision is one per-loop accept/skip/refute record: a stable SLMS2xx
// code, the verdict, the loop position and the measured evidence
// (filter ratio, II search iterations, ...) the decision rests on.
// Every Result carries its Decision; a tracer additionally collects
// them process-wide.
type Decision = obs.Decision

// Trace export formats accepted by StopTrace.
const (
	TraceFormatChrome = obs.FormatChrome // chrome://tracing / Perfetto
	TraceFormatJSONL  = obs.FormatJSONL  // one JSON object per span/decision
)

// StartTrace installs a fresh process-wide tracer and returns it.
// Subsequent pipeline calls record spans and decisions into it.
func StartTrace() *Tracer {
	t := obs.NewTracer()
	obs.Enable(t)
	return t
}

// StopTrace uninstalls the active tracer and, when w is non-nil, writes
// the collected trace to w in the given format (TraceFormatChrome or
// TraceFormatJSONL). Returns the stopped tracer (nil when tracing was
// off).
func StopTrace(w io.Writer, format string) (*Tracer, error) {
	t := obs.Active()
	obs.Disable()
	if t == nil || w == nil {
		return t, nil
	}
	return t, t.WriteTrace(w, format)
}

// Decisions returns the per-loop decision records collected by the
// active tracer, in the order they were made (nil when tracing is off).
func Decisions() []Decision {
	if t := obs.Active(); t != nil {
		return t.Decisions()
	}
	return nil
}

// MetricsText renders the process-wide metrics registry (counters,
// gauges, phase histograms) as a sorted plain-text dump. The same
// snapshot is published through expvar under the "slms" key.
func MetricsText() string { return obs.MetricsText() }

// Profiling: cycle attribution inside the simulator. While enabled,
// every simulated run attributes each cycle to a (source line, cause)
// pair — issue, hazard stall, L1 miss, pipeline fill,
// prologue/epilogue, branch — and each Measure outcome carries a
// Profile on its Base and SLMS metrics, including per-loop
// schedule-quality stats joined with the SLMS2xx decision records.
// Disabled (the default), the instrumentation is a handful of dormant
// nil checks on the simulator's hot path.

// Profile is one run's cycle-attribution profile: per-line and
// per-block cause breakdowns plus per-loop schedule quality.
type Profile = prof.Profile

// SetProfiling turns simulator cycle attribution on or off
// process-wide.
func SetProfiling(on bool) { prof.SetEnabled(on) }

// Profiling reports whether cycle attribution is enabled.
func Profiling() bool { return prof.Enabled() }

// Profile output formats accepted by WriteProfile.
const (
	ProfileFormatText  = "text"  // hot-line tables + per-loop stats
	ProfileFormatJSON  = "json"  // the Profile structs, indented
	ProfileFormatPprof = "pprof" // gzipped profile.proto for `go tool pprof`
)

// WriteProfile renders profiles collected from Measure outcomes
// (Outcome.Base.Profile, Outcome.SLMS.Profile) in the given format.
func WriteProfile(w io.Writer, format string, ps ...*Profile) error {
	return prof.Write(w, format, ps...)
}
