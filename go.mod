module slms

go 1.22
