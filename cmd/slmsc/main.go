// Command slmsc is the source-level compiler CLI: it parses a mini-C
// program, applies source-level modulo scheduling (and optionally other
// loop transformations) to its innermost loops, and prints the
// transformed source.
//
// Usage:
//
//	slmsc [flags] file.c      # transform a file
//	slmsc [flags] -           # read from stdin
//
// Flags:
//
//	-paper            print par groups in the paper's `a; || b;` style
//	-nofilter         disable the §4 bad-case filter
//	-speculate        schedule across unproven dependences
//	-expand=mve|array choose MVE or scalar expansion (§3.3 / §3.4)
//	-noguard          omit the short-trip guard + fallback loop
//	-slc              run the full SLC driver (adds fusion, interchange,
//	                  downward-loop mirroring and reduction splitting)
//	-verify           verify every transformation before printing: static
//	                  dependence-preservation proof with a differential
//	                  interpreter fallback (see cmd/slmslint for reports)
//	-verbose          print the per-loop transformation log to stderr
//	-profile FILE     compile and simulate the transformed program on the
//	                  reference machine (ia64-like, weak -O3) and write
//	                  its cycle-attribution profile as a pprof protobuf
//	                  (see cmd/slmsprof for machine/compiler sweeps)
//	-trace FILE       write a pipeline trace at exit (-trace-format
//	                  chrome loads in chrome://tracing; jsonl is one
//	                  JSON object per span/decision)
//	-metrics FILE     write a metrics dump at exit ("-" = stdout)
//	-request-id ID    stamp spans and decision records with this request
//	                  ID (a bare ID or a W3C traceparent header value)
//	-q                suppress status output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"slms/internal/analysis"
	"slms/internal/core"
	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/prof"
	"slms/internal/sched"
	"slms/internal/slc"
	"slms/internal/source"
)

func main() {
	paper := flag.Bool("paper", false, "print par groups in paper style (a; || b;)")
	noFilter := flag.Bool("nofilter", false, "disable the bad-case filter")
	speculate := flag.Bool("speculate", false, "schedule across unproven dependences")
	expand := flag.String("expand", "mve", "variant expansion: mve or array")
	noGuard := flag.Bool("noguard", false, "omit the short-trip guard")
	verbose := flag.Bool("verbose", false, "print the transformation log")
	useSLC := flag.Bool("slc", false, "run the full source-level-compiler driver (SLMS + fusion/interchange/mirroring/reduction-splitting)")
	verify := flag.Bool("verify", false, "verify every transformation before printing (static proof, differential fallback)")
	profPath := flag.String("profile", "", "simulate the transformed program on the reference machine and write its cycle profile (pprof) here")
	schedName := flag.String("scheduler", "", "profile under the strong final compiler using this modulo-scheduling backend: one of "+strings.Join(sched.Names(), ", "))
	effort := flag.String("effort", "", "exact-scheduler effort for -scheduler profiles: quick, standard or max")
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()
	defer tele.MustFinish()
	if *profPath != "" {
		prof.SetEnabled(true)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slmsc [flags] file.c  (use - for stdin)")
		os.Exit(2)
	}
	switch *expand {
	case "mve", "array":
	default:
		obs.Usagef("unknown -expand mode %q (want mve or array)", *expand)
	}
	if _, err := pipeline.SchedulerConfig(*schedName, *effort); err != nil {
		obs.Usagef("%v", err)
	}
	var text []byte
	var err error
	if flag.Arg(0) == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		obs.Fatalf("%v", err)
	}

	prog, err := source.Parse(string(text))
	if err != nil {
		obs.Fatalf("%v", err)
	}
	sp := obs.Root("slmsc").Attr("file", flag.Arg(0))
	defer sp.End()

	opts := core.DefaultOptions()
	opts.Filter = !*noFilter
	opts.Speculate = *speculate
	opts.NoGuard = *noGuard
	if *expand == "array" {
		opts.Expansion = core.ExpandScalar
	}

	if *useSLC {
		slcOpts := slc.DefaultOptions()
		slcOpts.SLMS = opts
		res, err := slc.Optimize(prog, slcOpts)
		if err != nil {
			obs.Fatalf("%v", err)
		}
		if *verbose {
			for _, a := range res.Actions {
				fmt.Fprintln(os.Stderr, a)
			}
		}
		if *verify {
			// The SLC driver composes several transforms; gate it with the
			// assumption-free differential oracle.
			if diffs, derr := analysis.Differential(prog, res.Program, analysis.DiffOptions{}); derr != nil {
				obs.Fatalf("verify: %v", derr)
			} else if len(diffs) > 0 {
				obs.Fatalf("verify: original and optimized programs diverge: %v", diffs)
			}
		}
		if *paper {
			fmt.Print(source.PrintPaper(res.Program))
		} else {
			fmt.Print(source.Print(res.Program))
		}
		if *profPath != "" {
			if err := profileTransformed(*profPath, flag.Arg(0), res.Program, *schedName, *effort); err != nil {
				obs.Fatalf("%v", err)
			}
		}
		return
	}

	out, results, err := core.TransformProgramSpan(sp, prog, opts)
	if err != nil {
		obs.Fatalf("%v", err)
	}
	if *verify {
		if err := analysis.VerifyTransformed(prog, out, results); err != nil {
			obs.Fatalf("verify: %v", err)
		}
	}
	if *verbose {
		for i, r := range results {
			fmt.Fprintf(os.Stderr, "loop %d: applied=%v", i+1, r.Applied)
			if r.Applied {
				fmt.Fprintf(os.Stderr, " II=%d MIs=%d stages=%d unroll=%d mode=%s",
					r.II, r.MIs, r.Stages, r.Unroll, r.Mode)
			} else {
				fmt.Fprintf(os.Stderr, " (%s)", r.Reason)
			}
			fmt.Fprintln(os.Stderr)
			for _, l := range r.Log {
				fmt.Fprintf(os.Stderr, "  %s\n", l)
			}
		}
	}
	if *paper {
		fmt.Print(source.PrintPaper(out))
	} else {
		fmt.Print(source.Print(out))
	}
	if *profPath != "" {
		if err := profileTransformed(*profPath, flag.Arg(0), out, *schedName, *effort); err != nil {
			obs.Fatalf("%v", err)
		}
	}
}

// profileTransformed compiles and simulates the transformed program on
// the reference machine (ia64-like VLIW, weak -O3 — the paper's primary
// target) and writes the run's cycle-attribution profile. A -scheduler
// or -effort selection switches the profile to the strong final
// compiler, the only class that runs machine-level modulo scheduling,
// with that backend. Cross-machine or base-vs-slms profiling lives in
// cmd/slmsprof.
func profileTransformed(path, label string, p *source.Program, scheduler, effort string) error {
	if label == "-" {
		label = "stdin"
	}
	cc := pipeline.WeakO3
	if scheduler != "" || effort != "" {
		cc = pipeline.StrongO3
		cc.Scheduler, cc.Effort = scheduler, effort
	}
	m, _, err := pipeline.Run(p, machine.IA64Like(), cc, interp.NewEnv())
	if err != nil {
		return fmt.Errorf("-profile: %w", err)
	}
	if m.Profile == nil {
		return fmt.Errorf("-profile: simulation recorded no profile")
	}
	m.Profile.Label = label
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return prof.WritePprof(f, m.Profile)
}
