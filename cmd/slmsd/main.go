// Command slmsd serves the SLMS pipeline over HTTP: POST mini-C source
// to /v1/compile (source-level modulo scheduling), /v1/schedule
// (compile + simulate, base vs SLMS), /v1/explain (per-loop decisions
// and translation-validation diagnostics) or /v1/profile (cycle
// attribution). /healthz and /readyz serve liveness and readiness.
//
// The service runs a bounded worker pool with a bounded admission queue
// (429 + Retry-After past capacity), enforces a per-request deadline
// threaded through the pipeline and simulator, deduplicates identical
// in-flight requests, caches rendered responses in an LRU, and drains
// gracefully on SIGTERM/SIGINT: in-flight requests complete, new ones
// get 503 while /readyz reports draining.
//
// Observability: every request carries a request ID (minted, or adopted
// from an incoming W3C traceparent header) that stamps the response's
// X-Request-ID header, the access log, and the request's span tree and
// decision records. /metrics serves the registry in Prometheus text
// format; /v1/status serves rolling SLO windows. The access log (one
// line per request) goes to -access-log: stderr by default, a file
// path, stdout, or off.
//
// Postmortem: a flight recorder (internal/obs/flight) keeps recent
// requests per endpoint in fixed memory and dumps a self-contained
// flightdump/v1 snapshot on 5xx, deadline expiry, panic, SLO budget
// breach, SIGQUIT or drain — rate-limited to one per -flight-cooldown.
// Dumps land in -flight-dir and are served at /debug/flight; SIGQUIT
// forces a dump and then drains like SIGTERM. slmsfr pretty-prints and
// replays them.
//
// Usage:
//
//	slmsd [flags]
//
// Flags:
//
//	-addr HOST:PORT        listen address (default 127.0.0.1:8347)
//	-workers N             concurrent pipeline executions (default GOMAXPROCS)
//	-queue N               admission queue depth (default 64)
//	-timeout DUR           default per-request pipeline budget (default 10s)
//	-max-timeout DUR       maximum a request may ask for (default 60s)
//	-cache N               response cache entries (default 512; negative disables)
//	-max-body BYTES        request body limit (default 1 MiB)
//	-drain-timeout DUR     graceful shutdown budget (default 30s)
//	-access-log DEST       access-log destination: stderr (default), stdout, off, or a file path
//	-flight-dir DIR        flight-dump directory (default "" = keep dumps in memory only)
//	-flight-cooldown DUR   minimum spacing between anomaly dumps (default 30s)
//	-flight-ring N         per-endpoint flight ring capacity (default 64)
//	-flight-body-cap N     request-body bytes retained per flight record (default 4096)
//	-no-flight             disable the flight recorder
//	-trace FILE            write a pipeline trace at exit
//	-trace-format chrome|jsonl
//	-metrics FILE          write a metrics dump at exit ("-" = stdout)
//	-q                     suppress status output
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"slms/internal/obs"
	"slms/internal/obs/flight"
	"slms/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	workers := flag.Int("workers", 0, "concurrent pipeline executions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth before 429s")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request pipeline budget")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "maximum per-request budget a client may ask for")
	cacheEntries := flag.Int("cache", 512, "response cache entries (negative disables)")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	accessLog := flag.String("access-log", "stderr", "access-log destination: stderr, stdout, off, or a file path")
	flightDir := flag.String("flight-dir", "", "flight-dump directory (empty keeps dumps in memory only)")
	flightCooldown := flag.Duration("flight-cooldown", 30*time.Second, "minimum spacing between anomaly-triggered flight dumps")
	flightRing := flag.Int("flight-ring", 64, "per-endpoint flight ring capacity in requests")
	flightBodyCap := flag.Int("flight-body-cap", 4096, "request-body bytes retained per flight record")
	noFlight := flag.Bool("no-flight", false, "disable the flight recorder")
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()

	if flag.NArg() != 0 {
		obs.Usagef("slmsd takes no positional arguments (got %q)", flag.Arg(0))
	}
	if *workers < 0 {
		obs.Usagef("-workers must be non-negative, got %d", *workers)
	}
	if *queue < 0 {
		obs.Usagef("-queue must be non-negative, got %d", *queue)
	}
	if *timeout <= 0 || *maxTimeout <= 0 || *drainTimeout <= 0 {
		obs.Usagef("-timeout, -max-timeout and -drain-timeout must be positive")
	}
	if *timeout > *maxTimeout {
		obs.Usagef("-timeout %v exceeds -max-timeout %v", *timeout, *maxTimeout)
	}
	if *flightCooldown <= 0 {
		obs.Usagef("-flight-cooldown must be positive, got %v", *flightCooldown)
	}
	if *flightRing <= 0 || *flightBodyCap <= 0 {
		obs.Usagef("-flight-ring and -flight-body-cap must be positive")
	}

	accessDst, closeAccess, err := openAccessLog(*accessLog)
	if err != nil {
		obs.Fatalf("-access-log: %v", err)
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cacheEntries,
		MaxBodyBytes:   *maxBody,
		AccessLog:      accessDst,
		Flight: flight.Config{
			Dir:      *flightDir,
			Cooldown: *flightCooldown,
			RingSize: *flightRing,
			BodyCap:  *flightBodyCap,
			Disabled: *noFlight,
		},
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		obs.Fatalf("listen: %v", err)
	}
	obs.Logf("slmsd listening on %s (workers=%d queue=%d timeout=%v)",
		ln.Addr(), *workers, *queue, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// SIGQUIT is the operator's "dump everything": force a flight dump
	// (bypassing the anomaly cooldown), then drain and exit cleanly like
	// SIGTERM. Registering the handler replaces the Go runtime's
	// stack-dump-and-die default.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	exit := 0
	drain := false
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Errorf("serve: %v", err)
			exit = 1
		}
	case <-sigq:
		obs.Logf("slmsd caught SIGQUIT: writing flight dump, then draining")
		srv.Flight().ForceTrigger(flight.TrigSigquit, "")
		drain = true
	case <-ctx.Done():
		stop() // a second signal kills immediately
		drain = true
	}
	if drain {
		obs.Logf("slmsd draining (budget %v)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		// Drain first so /v1 requests finish and new ones see 503, then
		// shut the listener down.
		if err := srv.Drain(dctx); err != nil {
			obs.Errorf("%v", err)
			exit = 1
		}
		if err := hs.Shutdown(dctx); err != nil {
			obs.Errorf("shutdown: %v", err)
			exit = 1
		}
		cancel()
		obs.Logf("slmsd stopped")
	}
	// Let in-flight dumps (SIGQUIT's, drain's, any late anomaly's)
	// finish writing before the process exits.
	srv.Flight().Sync()
	if err := tele.Finish(); err != nil {
		obs.Errorf("%v", err)
		exit = 1
	}
	closeAccess() // os.Exit skips defers
	os.Exit(exit)
}

// openAccessLog resolves the -access-log destination. "off" disables
// the log (nil writer); stderr and stdout map to the process streams;
// anything else opens (appending) a file. The returned closer is a
// no-op except for the file case.
func openAccessLog(dest string) (io.Writer, func(), error) {
	switch dest {
	case "off", "":
		return nil, func() {}, nil
	case "stderr":
		return os.Stderr, func() {}, nil
	case "stdout":
		return os.Stdout, func() {}, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
