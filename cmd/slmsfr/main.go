// Command slmsfr reads slmsd flight dumps (flightdump/v1): postmortem
// snapshots the flight recorder writes on 5xx, deadline expiry, panic,
// SLO budget breach, SIGQUIT or drain. It renders the per-request
// timeline — every captured request joined with its span summary and
// SLMS decision records by request ID — and can replay the captured
// request bodies against the in-process pipeline or a live slmsd, so a
// failure seen in production reproduces on a laptop from the dump file
// alone.
//
// Usage:
//
//	slmsfr [flags] dump.json   (use - for stdin)
//
// Flags:
//
//	-lint                      validate the dump schema and exit
//	-replay                    replay captured request bodies and compare outcomes
//	-addr HOST:PORT            replay against a live slmsd instead of in-process
//	-endpoint NAME             restrict printing/replay to one endpoint
//	-v                         also print span summaries and request bodies
//	-request-id ID             restrict printing/replay to one request ID
//	-trace FILE                write a pipeline trace at exit (in-process replay)
//	-trace-format chrome|jsonl trace file format (default chrome)
//	-metrics FILE              write a metrics dump at exit ("-" = stdout)
//	-q                         suppress status output
//
// Exit status: 0 on success (lint ok, print ok, every replayed request
// reproduced its recorded outcome), 1 when the dump is corrupt or a
// replay diverges, 2 on usage errors.
//
// Replay covers records whose outcome is deterministic from the body
// alone: statuses 200, 400 and 422 on the standard /v1 endpoints, with
// untruncated bodies. Load-dependent outcomes (429, 503), timing (504,
// 499) and requests to nonstandard endpoints (a test-mounted panic
// route) are skipped and counted.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"slms/internal/obs"
	"slms/internal/obs/flight"
	"slms/internal/server"
)

var (
	lint     = flag.Bool("lint", false, "validate the dump schema and exit")
	replay   = flag.Bool("replay", false, "replay captured request bodies and compare outcomes")
	addr     = flag.String("addr", "", "replay against a live slmsd at this address instead of in-process")
	endpoint = flag.String("endpoint", "", "restrict printing/replay to one endpoint")
	verbose  = flag.Bool("v", false, "also print span summaries and request bodies")
)

func main() {
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()
	defer tele.MustFinish()
	if flag.NArg() != 1 {
		obs.Usagef("usage: slmsfr [flags] dump.json  (use - for stdin)")
	}
	if *lint && *replay {
		obs.Usagef("-lint and -replay are mutually exclusive")
	}
	if *addr != "" && !*replay {
		obs.Usagef("-addr only makes sense with -replay")
	}

	d, err := readDump(flag.Arg(0))
	if err != nil {
		obs.Fatalf("%v", err)
	}

	switch {
	case *lint:
		records := 0
		for _, ed := range d.Endpoints {
			records += len(ed.Records)
		}
		obs.Logf("%s ok: seq=%d reason=%s endpoints=%d records=%d",
			flight.Schema, d.Seq, d.Reason, len(d.Endpoints), records)
	case *replay:
		if !replayDump(d, tele.RequestID) {
			os.Exit(1)
		}
	default:
		printDump(d, tele.RequestID)
	}
}

func readDump(path string) (*flight.Dump, error) {
	if path == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return flight.Decode(data)
	}
	return flight.DecodeFile(path)
}

// selected applies the -endpoint and -request-id filters.
func selected(rec flight.Record, reqID string) bool {
	if *endpoint != "" && rec.Endpoint != *endpoint {
		return false
	}
	if reqID != "" && rec.RequestID != reqID {
		return false
	}
	return true
}

func printDump(d *flight.Dump, reqID string) {
	fmt.Printf("%s seq=%d reason=%s time=%s\n",
		d.Schema, d.Seq, d.Reason, d.Time.Format(time.RFC3339))
	if d.Detail != "" {
		fmt.Printf("detail: %s\n", d.Detail)
	}
	fmt.Printf("goroutines=%d heap=%s dropped_triggers=%d\n",
		d.NumGoroutine, sizeOf(d.Mem.HeapAllocBytes), d.DroppedTriggers)

	timeline := d.Timeline()
	shown := 0
	fmt.Printf("== timeline (%d captured requests) ==\n", len(timeline))
	for _, rec := range timeline {
		if !selected(rec, reqID) {
			continue
		}
		shown++
		printRecord(rec)
	}
	if shown == 0 {
		fmt.Println("  (no records match the filters)")
	}

	for _, ed := range d.Endpoints {
		if *endpoint != "" && ed.Endpoint != *endpoint {
			continue
		}
		if len(ed.Slowest) == 0 {
			continue
		}
		fmt.Printf("== slowest: %s (%d exemplars) ==\n", ed.Endpoint, len(ed.Slowest))
		for _, rec := range ed.Slowest {
			if reqID != "" && rec.RequestID != reqID {
				continue
			}
			fmt.Printf("  seq=%-6d %s %d %8dus req=%s\n",
				rec.Seq, padEndpoint(rec.Endpoint), rec.Status, rec.DurUS, rec.RequestID)
		}
	}
}

func printRecord(rec flight.Record) {
	when := time.Unix(0, rec.TimeUnixNS).UTC().Format("15:04:05.000")
	code := rec.ErrCode
	if code == "" {
		code = "-"
	}
	fmt.Printf("  seq=%-6d %s %s %d %-5s %8dus req=%s fp=%s %s\n",
		rec.Seq, when, padEndpoint(rec.Endpoint), rec.Status, dash(rec.Cache),
		rec.DurUS, rec.RequestID, short(rec.Fingerprint), code)
	for _, dn := range rec.Decisions {
		loc := ""
		if dn.Loop != "" {
			loc = " loop=" + dn.Loop
		}
		reason := ""
		if dn.Reason != "" {
			reason = " (" + dn.Reason + ")"
		}
		fmt.Printf("      decision %s %s%s%s\n", dn.Code, dn.Verdict, loc, reason)
	}
	if *verbose {
		for _, sn := range rec.Spans {
			fmt.Printf("      span %s%s %dus\n", strings.Repeat("  ", sn.Depth), sn.Name, sn.DurUS)
		}
		if rec.Body != "" {
			marker := ""
			if rec.Truncated {
				marker = fmt.Sprintf(" (truncated, %d of %d bytes)", len(rec.Body), rec.BodyLen)
			}
			fmt.Printf("      body%s: %s\n", marker, strings.TrimSpace(rec.Body))
		}
	}
}

// replayable endpoints: the standard /v1 surface. Dumps from tests can
// carry records for mounted misbehaving routes; those have no stable
// target to replay against.
var v1Endpoints = map[string]bool{
	"compile": true, "schedule": true, "explain": true, "profile": true,
}

// deterministic statuses: reproducible from the body alone, neither
// load- (429, 503) nor timing-dependent (504, 499, panic 500s from
// test-mounted routes).
func deterministic(status int) bool {
	return status == 200 || status == 400 || status == 422
}

// replayDump re-POSTs every replayable captured body and compares the
// resulting status and SLMS error code against the record. Reports
// whether every replayed request reproduced its recorded outcome.
func replayDump(d *flight.Dump, reqID string) bool {
	post := livePoster(*addr)
	if *addr == "" {
		// In-process: a private server instance with its own recorder
		// disabled — the replay should read a dump, not write one.
		srv := server.New(server.Config{Flight: flight.Config{Disabled: true}})
		post = inprocPoster(srv)
	}

	replayed, matched, skipped := 0, 0, 0
	for _, rec := range d.Timeline() {
		if !selected(rec, reqID) {
			continue
		}
		if !v1Endpoints[rec.Endpoint] || !deterministic(rec.Status) ||
			rec.Truncated || rec.Body == "" {
			skipped++
			continue
		}
		replayed++
		gotStatus, gotCode, err := post("/v1/"+rec.Endpoint, rec.Body)
		if err != nil {
			fmt.Printf("replay seq=%-6d %s: %v\n", rec.Seq, rec.Endpoint, err)
			continue
		}
		wantCode := rec.ErrCode
		verdict := "reproduced"
		ok := gotStatus == rec.Status && gotCode == wantCode
		if ok {
			matched++
		} else {
			verdict = "DIVERGED"
		}
		fmt.Printf("replay seq=%-6d %s want=%d%s got=%d%s %s\n",
			rec.Seq, padEndpoint(rec.Endpoint),
			rec.Status, codeSuffix(wantCode), gotStatus, codeSuffix(gotCode), verdict)
	}
	fmt.Printf("replayed %d requests: %d reproduced, %d diverged, %d skipped (non-deterministic, truncated or non-/v1)\n",
		replayed, matched, replayed-matched, skipped)
	return matched == replayed
}

type poster func(path, body string) (status int, slmsCode string, err error)

// inprocPoster serves replays straight through the server's handler —
// the same pipeline, admission and error model as a live slmsd, no
// network.
func inprocPoster(srv *server.Server) poster {
	h := srv.Handler()
	return func(path, body string) (int, string, error) {
		req, err := http.NewRequest(http.MethodPost, "http://slmsfr.replay"+path, strings.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		w := &memWriter{hdr: http.Header{}, status: 200}
		h.ServeHTTP(w, req)
		return w.status, errCodeOf(w.buf.Bytes(), w.status), nil
	}
}

// livePoster replays over HTTP against a running slmsd.
func livePoster(addr string) poster {
	base := addr
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	return func(path, body string) (int, string, error) {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, "", err
		}
		return resp.StatusCode, errCodeOf(blob, resp.StatusCode), nil
	}
}

// errCodeOf extracts the stable SLMS code from an error envelope; 200s
// carry none, matching the empty ErrCode of a successful record.
func errCodeOf(body []byte, status int) string {
	if status == 200 {
		return ""
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		return ""
	}
	return envelope.Error.Code
}

// memWriter is a minimal in-memory http.ResponseWriter for in-process
// replay.
type memWriter struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func (w *memWriter) Header() http.Header         { return w.hdr }
func (w *memWriter) WriteHeader(code int)        { w.status = code }
func (w *memWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return dash(fp)
}

func codeSuffix(code string) string {
	if code == "" {
		return ""
	}
	return "/" + code
}

func padEndpoint(name string) string { return fmt.Sprintf("%-8s", name) }

func sizeOf(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
