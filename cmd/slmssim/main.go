// Command slmssim compiles a mini-C program with one of the simulated
// final compilers and executes it on one of the simulated machines,
// printing the performance metrics — the measurement half of the tool
// chain, usable on arbitrary programs.
//
// Usage:
//
//	slmssim [flags] file.c        (use - for stdin)
//
// Flags:
//
//	-machine ia64|power4|pentium|arm7   target machine (default ia64)
//	-compiler weak|strong               final compiler class (default weak)
//	-O0                                 disable compiler scheduling
//	-slms                               apply SLMS before compiling
//	-compare                            run with and without SLMS and report the speedup
//	-verify                             verify every SLMS transformation before compiling
//	-dump                               print the lowered virtual ISA
//	-profile FILE                       write a cycle-attribution profile
//	                                    (pprof protobuf; see cmd/slmsprof)
//	-trace FILE                         write a pipeline trace at exit
//	-trace-format chrome|jsonl          trace file format (default chrome)
//	-metrics FILE                       write a metrics dump at exit ("-" = stdout)
//	-request-id ID                      stamp spans and decision records with this
//	                                    request ID (bare ID or W3C traceparent)
//	-q                                  suppress status output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"slms/internal/analysis"
	"slms/internal/core"
	"slms/internal/interp"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/prof"
	"slms/internal/sched"
	"slms/internal/sim"
	"slms/internal/source"
)

func main() {
	machineName := flag.String("machine", "ia64", "ia64, power4, pentium or arm7")
	compiler := flag.String("compiler", "weak", "weak (GCC-like) or strong (ICC/XLC-like)")
	o0 := flag.Bool("O0", false, "disable compiler scheduling")
	scheduler := flag.String("scheduler", "", "modulo-scheduling backend for strong compiles: one of "+strings.Join(sched.Names(), ", ")+" (default ims)")
	effort := flag.String("effort", "", "exact-scheduler effort: quick, standard or max (under ims, also proves the optimality gap)")
	slms := flag.Bool("slms", false, "apply SLMS before compiling")
	compare := flag.Bool("compare", false, "measure base vs SLMS and report the speedup")
	dump := flag.Bool("dump", false, "print the lowered virtual ISA")
	verify := flag.Bool("verify", false, "verify every SLMS transformation before compiling")
	profPath := flag.String("profile", "", "write a cycle-attribution profile (pprof protobuf) here")
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()
	defer tele.MustFinish()
	pipeline.SetVerify(*verify)
	if *profPath != "" {
		prof.SetEnabled(true)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slmssim [flags] file.c  (use - for stdin)")
		os.Exit(2)
	}
	// Flag-value mistakes are usage errors (exit 2), distinct from
	// failed work (exit 1); check them before doing any work.
	d, err := machine.ByName(*machineName)
	if err != nil {
		obs.Usagef("%v", err)
	}
	cc, err := pipeline.CompilerByName(*compiler, *o0)
	if err != nil {
		obs.Usagef("%v", err)
	}
	if _, err := pipeline.SchedulerConfig(*scheduler, *effort); err != nil {
		obs.Usagef("%v", err)
	}
	cc.Scheduler, cc.Effort = *scheduler, *effort

	var text []byte
	if flag.Arg(0) == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}
	prog, err := source.Parse(string(text))
	if err != nil {
		fatal(err)
	}
	obs.Logf("machine: %s; compiler: %s", d.Name, cc.Name)
	sp := obs.Root("slmssim").Attr("machine", d.Name).Attr("compiler", cc.Name)
	defer sp.End()

	if *compare {
		outs, errs, err := pipeline.RunExperimentsSpan(sp, prog, d, cc,
			[]core.Options{core.DefaultOptions()}, nil)
		if err == nil {
			err = errs[0]
		}
		if err != nil {
			fatal(err)
		}
		out := outs[0]
		fmt.Printf("base: %s\n", out.Base)
		fmt.Printf("slms: %s\n", out.SLMS)
		fmt.Printf("speedup: %.3f  energy ratio: %.3f  (slms applied: %v)\n",
			out.Speedup, out.PowerRatio, out.Applied)
		if *profPath != "" {
			ms := []*sim.Metrics{out.Base}
			if out.SLMS != nil && out.SLMS != out.Base {
				ms = append(ms, out.SLMS)
			}
			if err := writeProfile(*profPath, flag.Arg(0), ms...); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *slms {
		transformed, results, err := core.TransformProgramSpan(sp, prog, core.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		if *verify {
			if err := analysis.VerifyTransformed(prog, transformed, results); err != nil {
				fatal(fmt.Errorf("verify: %w", err))
			}
		}
		applied := 0
		for _, r := range results {
			if r.Applied {
				applied++
			}
		}
		obs.Logf("transformed %d of %d loops", applied, len(results))
		prog = transformed
	}

	env := interp.NewEnv()
	m, art, err := pipeline.RunSpan(sp, prog, d, cc, env)
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(art.Func.Dump())
	}
	fmt.Println(m)
	if art.Alloc.SpilledRegs > 0 {
		fmt.Printf("register allocation: %d values spilled (%d reloads, %d stores); pressure int=%d fp=%d\n",
			art.Alloc.SpilledRegs, m.SpillLoads, m.SpillStores,
			art.Alloc.MaxLiveInt, art.Alloc.MaxLiveFloat)
	}
	for id, r := range art.IMSResults {
		if r.OK {
			fmt.Printf("loop body b%d: modulo scheduled II=%d SL=%d stages=%d (ResMII=%d RecMII=%d)\n",
				id, r.II, r.SL, r.Stages, r.ResMII, r.RecMII)
		} else {
			fmt.Printf("loop body b%d: modulo scheduling rejected: %s\n", id, r.Reason)
		}
	}
	if *profPath != "" {
		if err := writeProfile(*profPath, flag.Arg(0), m); err != nil {
			fatal(err)
		}
	}
}

// writeProfile dumps the runs' cycle-attribution profiles as a pprof
// protobuf, labeling them with the input file name.
func writeProfile(path, label string, ms ...*sim.Metrics) error {
	if label == "-" {
		label = "stdin"
	}
	var ps []*prof.Profile
	for _, m := range ms {
		if m == nil || m.Profile == nil {
			continue
		}
		if m.Profile.Label == "" {
			m.Profile.Label = label
		}
		ps = append(ps, m.Profile)
	}
	if len(ps) == 0 {
		return fmt.Errorf("-profile: simulation recorded no profile")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return prof.WritePprof(f, ps...)
}

func fatal(err error) {
	obs.Fatalf("%v", err)
}
