// Command slmslint lints mini-C programs through the SLMS verifier: it
// transforms every innermost loop, statically proves (or refutes) that
// each applied schedule preserves the loop's dependences, explains why
// the remaining loops were rejected, and falls back to differential
// translation validation when the static checker is inconclusive.
//
// Usage:
//
//	slmslint [flags] file.c...   # lint files
//	slmslint [flags] -           # read from stdin
//
// Exit status: 0 when every file is clean, 1 when any diagnostic is an
// error (a refuted schedule or a differential mismatch), 2 on usage or
// read/parse failures.
//
// Flags:
//
//	-json             machine-readable report (one JSON object per file)
//	-q                only warnings and errors (suppress info diagnostics)
//	-diff             run the differential harness even for proved loops
//	-seeds=N          differential input sets (default 3)
//	-nofilter         disable the §4 bad-case filter
//	-threshold=R      memory-ref ratio filter threshold (default 0.85)
//	-speculate        schedule across unproven dependences
//	-expand=mve|array variant expansion strategy
//	-noguard          omit the short-trip guard
//	-trace FILE       write a pipeline trace at exit (-trace-format
//	                  chrome or jsonl)
//	-metrics FILE     write a metrics dump at exit ("-" = stdout)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"slms/internal/analysis"
	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/source"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	quiet := flag.Bool("q", false, "only warnings and errors")
	diff := flag.Bool("diff", false, "run differential validation even for proved loops")
	seeds := flag.Int("seeds", 3, "differential input sets")
	noFilter := flag.Bool("nofilter", false, "disable the bad-case filter")
	threshold := flag.Float64("threshold", 0.85, "memory-ref ratio filter threshold")
	speculate := flag.Bool("speculate", false, "schedule across unproven dependences")
	expand := flag.String("expand", "mve", "variant expansion: mve or array")
	noGuard := flag.Bool("noguard", false, "omit the short-trip guard")
	optgap := flag.Bool("optgap", false, "audit machine-level modulo schedules: prove each heuristic II against the exact scheduler (SLMS31x diagnostics)")
	machineName := flag.String("machine", "ia64", "target machine for -optgap: ia64, power4, pentium or arm7")
	effort := flag.String("effort", "standard", "exact-prover effort for -optgap: quick, standard or max")
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	obs.SetQuiet(*quiet)
	tele.Activate()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: slmslint [flags] file.c...  (use - for stdin)")
		os.Exit(2)
	}
	opts := analysis.LintOptions{Core: core.DefaultOptions(), Diff: *diff, Seeds: *seeds}
	opts.Core.Filter = !*noFilter
	opts.Core.MemRefThreshold = *threshold
	opts.Core.Speculate = *speculate
	opts.Core.NoGuard = *noGuard
	switch *expand {
	case "mve":
	case "array":
		opts.Core.Expansion = core.ExpandScalar
	default:
		obs.Usagef("unknown -expand mode %q (want mve or array)", *expand)
	}
	if *seeds < 1 {
		obs.Usagef("-seeds must be at least 1, got %d", *seeds)
	}
	if *threshold < 0 || *threshold > 1 {
		obs.Usagef("-threshold must be in [0,1], got %v", *threshold)
	}
	var optMachine *machine.Desc
	if *optgap {
		var err error
		if optMachine, err = machine.ByName(*machineName); err != nil {
			obs.Usagef("%v", err)
		}
		switch *effort {
		case "quick", "standard", "max":
		default:
			obs.Usagef("unknown -effort %q (want quick, standard or max)", *effort)
		}
	}

	failed := false
	for _, name := range flag.Args() {
		var text []byte
		var err error
		if name == "-" {
			name = "<stdin>"
			text, err = io.ReadAll(os.Stdin)
		} else {
			text, err = os.ReadFile(name)
		}
		if err != nil {
			// Read and parse failures exit 2 per the documented contract;
			// the slog wrapper keeps diagnostics uniform across commands.
			obs.Usagef("%v", err)
		}
		prog, err := source.Parse(string(text))
		if err != nil {
			obs.Usagef("%s: %v", name, err)
		}
		rep, err := analysis.LintProgram(name, prog, opts)
		if err != nil {
			obs.Usagef("%s: %v", name, err)
		}
		if *optgap {
			diags, err := analysis.Optgap(prog, analysis.OptgapOptions{Machine: optMachine, Effort: *effort})
			if err != nil {
				obs.Usagef("%s: optgap: %v", name, err)
			}
			rep.Diags = append(rep.Diags, diags...)
		}
		if *jsonOut {
			raw, err := rep.JSON()
			if err != nil {
				obs.Usagef("%v", err)
			}
			fmt.Println(string(raw))
		} else {
			fmt.Print(rep.Render(*quiet))
		}
		failed = failed || rep.HasErrors()
	}
	if err := tele.Finish(); err != nil {
		obs.Fatalf("%v", err)
	}
	if failed {
		os.Exit(1)
	}
}
