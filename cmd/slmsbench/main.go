// Command slmsbench regenerates the paper's evaluation figures (14–22
// plus the two in-text bundle-count case studies) as text tables.
//
// Usage:
//
//	slmsbench              # all figures + BENCH_1.json harness stats
//	slmsbench -figure 14   # one figure
//	slmsbench -ablations   # design-choice ablation studies
//	slmsbench -list        # list available figures
//
// The all-figures run writes a machine-readable harness trajectory
// (wall time per figure, simulated cycles, cycles/second, artifact
// cache hit rate) to the -json path. -cpuprofile/-memprofile write
// pprof profiles of whichever mode runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"slms/internal/bench"
	"slms/internal/obs"
	"slms/internal/pipeline"
)

func main() {
	figure := flag.String("figure", "", "regenerate a single figure (e.g. 14, caseA)")
	list := flag.Bool("list", false, "list available figures")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation studies instead")
	census := flag.Bool("census", false, "report machine-MS application before/after SLMS (paper §9.2)")
	extensions := flag.Bool("extensions", false, "measure the §10 while-loop and frequent-path extensions")
	summary := flag.Bool("summary", false, "one line per figure: the reproduction scoreboard")
	jsonPath := flag.String("json", "BENCH_1.json", "write harness stats for the all-figures run here (empty = skip)")
	workers := flag.Int("workers", 0, "measurement worker-pool size (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	verify := flag.Bool("verify", false, "verify every SLMS transformation before compiling")
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()
	pipeline.SetVerify(*verify)

	if *workers > 0 {
		bench.SetWorkers(*workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			obs.Fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			obs.Fatalf("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				obs.Errorf("%v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				obs.Errorf("%v", err)
			}
		}()
	}

	err := run(*figure, *list, *ablations, *census, *extensions, *summary, *jsonPath)
	if ferr := tele.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		obs.Errorf("%v", err)
		os.Exit(1)
	}
}

// run dispatches one benchmark mode. Kept separate from main so the
// pprof/json defers above run before a failure exit.
func run(figure string, list, ablations, census, extensions, summary bool, jsonPath string) error {
	switch {
	case summary:
		out, err := bench.Summary()
		if err != nil {
			return err
		}
		fmt.Print(out)
	case extensions:
		f, err := bench.Extensions()
		if err != nil {
			return err
		}
		fmt.Println(f.Table())
	case census:
		rows, err := bench.Census()
		if err != nil {
			return err
		}
		fmt.Print(bench.CensusTable(rows))
	case ablations:
		figs, err := bench.AllAblations()
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(f.Table())
		}
	case list:
		for _, id := range bench.FigureIDs() {
			fmt.Println(id)
		}
	case figure != "":
		f, err := bench.ByID(figure)
		if err != nil {
			return err
		}
		fmt.Println(f.Table())
	default:
		figs, stats, err := bench.AllFiguresTimed()
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(f.Table())
		}
		if jsonPath != "" {
			blob, err := json.MarshalIndent(stats, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
