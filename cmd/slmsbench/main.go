// Command slmsbench regenerates the paper's evaluation figures (14–22
// plus the two in-text bundle-count case studies) as text tables.
//
// Usage:
//
//	slmsbench              # all figures + BENCH_1.json harness stats
//	slmsbench -figure 14   # one figure
//	slmsbench -ablations   # design-choice ablation studies
//	slmsbench -optgap      # heuristic-vs-exact scheduler optimality census
//	slmsbench -list        # list available figures
//
// The all-figures run writes a machine-readable harness trajectory
// (wall time per figure, simulated cycles, cycles/second, artifact
// cache hit rate) to the -json path. -cpuprofile/-memprofile write
// pprof profiles of whichever mode runs.
//
// -profile FILE turns the simulator's cycle-attribution profiler on
// for the run and writes the suite's per-kernel profiles as a pprof
// protobuf (readable with `go tool pprof FILE`); the BENCH json then
// also carries per-kernel cause totals.
//
// -compare OLD.json NEW.json diffs two harness trajectories
// benchstat-style (per-kernel cycle deltas gate deterministically;
// wall-time deltas carry confidence intervals when either side has
// repeat samples) and exits 1 when any kernel's simulated cycles
// regressed beyond -threshold.
//
// -trajectory folds every BENCH_*.json snapshot (the positional
// arguments, or a BENCH_*.json glob of the working directory when none
// are given) into one time-series report — cycles/second for both
// legs, cache split, precision census, per-phase seconds — printing
// markdown to stdout, writing the JSON document to the -json path
// (default TRAJECTORY.json in this mode), and exiting 1 when any
// adjacent pair regressed beyond -threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"slms/internal/bench"
	"slms/internal/bench/compare"
	"slms/internal/bench/trajectory"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/prof"
)

func main() {
	figure := flag.String("figure", "", "regenerate a single figure (e.g. 14, caseA)")
	list := flag.Bool("list", false, "list available figures")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation studies instead")
	census := flag.Bool("census", false, "report machine-MS application before/after SLMS (paper §9.2)")
	optgap := flag.Bool("optgap", false, "report the machine-level optimality census: heuristic II vs the exact scheduler's proven minimum, per corpus loop")
	effort := flag.String("effort", "standard", "exact-prover effort for -optgap: quick, standard or max")
	extensions := flag.Bool("extensions", false, "measure the §10 while-loop and frequent-path extensions")
	summary := flag.Bool("summary", false, "one line per figure: the reproduction scoreboard")
	legs := flag.Bool("legs", false, "run the suite twice (serial + parallel legs, cold caches) and write a two-leg trajectory")
	jsonPath := flag.String("json", "BENCH_1.json", "write harness stats for the all-figures run here (empty = skip)")
	workers := flag.Int("workers", 0, "measurement worker-pool size (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	verify := flag.Bool("verify", false, "verify every SLMS transformation before compiling")
	profPath := flag.String("profile", "", "enable cycle attribution and write suite profiles (pprof protobuf) here")
	doCompare := flag.Bool("compare", false, "compare two BENCH json files given as arguments; exit 1 on cycle regression")
	doTrajectory := flag.Bool("trajectory", false, "fold BENCH json snapshots (arguments, or a BENCH_*.json glob) into a time-series report; exit 1 on regression")
	threshold := flag.Float64("threshold", compare.DefaultCycleThreshold,
		"relative cycle growth that -compare treats as a regression")
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()
	pipeline.SetVerify(*verify)

	if *doCompare {
		if flag.NArg() != 2 {
			obs.Errorf("usage: slmsbench -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			obs.Errorf("%v", err)
			os.Exit(1)
		}
		return
	}
	if *doTrajectory {
		if err := runTrajectory(flag.Args(), *jsonPath, *threshold); err != nil {
			obs.Errorf("%v", err)
			os.Exit(1)
		}
		return
	}
	if *profPath != "" {
		prof.SetEnabled(true)
	}

	if *workers > 0 {
		bench.SetWorkers(*workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			obs.Fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			obs.Fatalf("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				obs.Errorf("%v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				obs.Errorf("%v", err)
			}
		}()
	}

	if *optgap {
		rows, sum, err := bench.OptgapCensus(bench.OptgapCorpus(), *effort)
		if err != nil {
			obs.Errorf("%v", err)
			os.Exit(1)
		}
		fmt.Print(bench.OptgapTable(rows, sum))
		if err := tele.Finish(); err != nil {
			obs.Errorf("%v", err)
			os.Exit(1)
		}
		return
	}

	err := run(*figure, *list, *ablations, *census, *extensions, *summary, *legs, *jsonPath)
	if err == nil && *profPath != "" {
		err = writeSuiteProfiles(*profPath)
	}
	if ferr := tele.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		obs.Errorf("%v", err)
		os.Exit(1)
	}
}

// runCompare diffs two BENCH json trajectories and reports regressions.
// The table is primary output on stdout; the failure itself is an error
// so -q still exits nonzero on a regression.
func runCompare(oldPath, newPath string, threshold float64) error {
	old, err := compare.Load(oldPath)
	if err != nil {
		return err
	}
	new, err := compare.Load(newPath)
	if err != nil {
		return err
	}
	rep, err := compare.Compare([]*bench.RunStats{old}, []*bench.RunStats{new},
		compare.Options{CycleThreshold: threshold})
	if err != nil {
		return err
	}
	if !obs.Quiet() {
		fmt.Print(rep.Table())
	}
	if rep.Failed() {
		return fmt.Errorf("%d kernel(s) regressed beyond %.0f%%",
			len(rep.Regressions), 100*rep.Threshold)
	}
	return nil
}

// runTrajectory folds the given snapshots (or the working directory's
// BENCH_*.json files) into one time-series report: markdown on stdout,
// the JSON document at jsonPath, and an error when any adjacent pair
// regressed.
func runTrajectory(paths []string, jsonPath string, threshold float64) error {
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
		if len(paths) == 0 {
			return fmt.Errorf("-trajectory: no BENCH_*.json snapshots found")
		}
	}
	s, err := trajectory.Build(paths, threshold)
	if err != nil {
		return err
	}
	if !obs.Quiet() {
		fmt.Print(s.Markdown())
	}
	// The -json default names the all-figures output; redirect it so
	// -trajectory never clobbers the BENCH_1.json baseline.
	if jsonPath == "BENCH_1.json" {
		jsonPath = "TRAJECTORY.json"
	}
	if jsonPath != "" {
		blob, err := s.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, blob, 0o644); err != nil {
			return err
		}
	}
	if s.Failed() {
		return fmt.Errorf("%d regression(s) across the trajectory (threshold %.0f%%)",
			len(s.Regressions), 100*s.Threshold)
	}
	return nil
}

func writeSuiteProfiles(path string) error {
	ps := bench.SuiteProfiles()
	if len(ps) == 0 {
		return fmt.Errorf("-profile: the selected mode recorded no measurements")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return prof.WritePprof(f, ps...)
}

// run dispatches one benchmark mode. Kept separate from main so the
// pprof/json defers above run before a failure exit.
func run(figure string, list, ablations, census, extensions, summary, legs bool, jsonPath string) error {
	switch {
	case legs:
		figs, stats, err := bench.AllFiguresLegs()
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(f.Table())
		}
		fmt.Printf("legs: serial %.4g cycles/sec, parallel %.4g cycles/sec (%.2fx scaling on %d procs)\n",
			stats.Serial.CyclesPerSecond, stats.Parallel.CyclesPerSecond,
			stats.Scaling, stats.Parallel.GoMaxProcs)
		if jsonPath != "" {
			blob, err := json.MarshalIndent(stats, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		}
	case summary:
		out, err := bench.Summary()
		if err != nil {
			return err
		}
		fmt.Print(out)
	case extensions:
		f, err := bench.Extensions()
		if err != nil {
			return err
		}
		fmt.Println(f.Table())
	case census:
		rows, err := bench.Census()
		if err != nil {
			return err
		}
		fmt.Print(bench.CensusTable(rows))
		prows, psum, err := bench.PrecisionCensus(bench.PrecisionCorpus())
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(bench.PrecisionTable(prows, psum))
	case ablations:
		figs, err := bench.AllAblations()
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(f.Table())
		}
	case list:
		for _, id := range bench.FigureIDs() {
			fmt.Println(id)
		}
	case figure != "":
		f, err := bench.ByID(figure)
		if err != nil {
			return err
		}
		fmt.Println(f.Table())
	default:
		figs, stats, err := bench.AllFiguresTimed()
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(f.Table())
		}
		if jsonPath != "" {
			blob, err := json.MarshalIndent(stats, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
