// Command slmsbench regenerates the paper's evaluation figures (14–22
// plus the two in-text bundle-count case studies) as text tables.
//
// Usage:
//
//	slmsbench              # all figures
//	slmsbench -figure 14   # one figure
//	slmsbench -ablations   # design-choice ablation studies
//	slmsbench -list        # list available figures
package main

import (
	"flag"
	"fmt"
	"os"

	"slms/internal/bench"
)

func main() {
	figure := flag.String("figure", "", "regenerate a single figure (e.g. 14, caseA)")
	list := flag.Bool("list", false, "list available figures")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation studies instead")
	census := flag.Bool("census", false, "report machine-MS application before/after SLMS (paper §9.2)")
	extensions := flag.Bool("extensions", false, "measure the §10 while-loop and frequent-path extensions")
	summary := flag.Bool("summary", false, "one line per figure: the reproduction scoreboard")
	flag.Parse()

	if *summary {
		out, err := bench.Summary()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	if *extensions {
		f, err := bench.Extensions()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(f.Table())
		return
	}

	if *census {
		rows, err := bench.Census()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(bench.CensusTable(rows))
		return
	}

	if *ablations {
		figs, err := bench.AllAblations()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(f.Table())
		}
		return
	}

	if *list {
		for _, id := range bench.FigureIDs() {
			fmt.Println(id)
		}
		return
	}
	if *figure != "" {
		f, err := bench.ByID(*figure)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(f.Table())
		return
	}
	figs, err := bench.AllFigures()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range figs {
		fmt.Println(f.Table())
	}
}
