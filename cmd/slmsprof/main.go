// Command slmsprof is the cycle-attribution profiler: it compiles a
// mini-C program, runs it base and SLMS-transformed on a simulated
// machine, and reports where every cycle went — per source line, per
// cause (issue, hazard-stall, l1-miss, pipeline-fill,
// prologue-epilogue, branch) — plus per-loop schedule-quality metrics
// (II vs MII, issue-slot utilization, register pressure, fill/drain
// overhead) joined with the SLMS2xx scheduling decision records.
//
// Usage:
//
//	slmsprof [flags] file.c        (use - for stdin)
//
// Flags:
//
//	-machine ia64|power4|pentium|arm7   target machine (default ia64)
//	-compiler weak|strong               final compiler class (default weak)
//	-O0                                 disable compiler scheduling
//	-format text|json|pprof             output format (default text)
//	-top N                              lines per hot-line table (default 20)
//	-o FILE                             output file (default stdout)
//	-base-only                          profile only the untransformed leg
//	-q                                  suppress status output
//
// The pprof format is the standard gzipped profile.proto, so
//
//	slmsprof -format=pprof -o cycles.pb.gz kernel.c
//	go tool pprof -top cycles.pb.gz       # or -http=: for flamegraphs
//
// renders flamegraphs keyed by (program, source line, cause).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"slms/internal/core"
	"slms/internal/machine"
	"slms/internal/obs"
	"slms/internal/pipeline"
	"slms/internal/prof"
	"slms/internal/sched"
	"slms/internal/source"
)

func main() {
	machineName := flag.String("machine", "ia64", "ia64, power4, pentium or arm7")
	compiler := flag.String("compiler", "weak", "weak (GCC-like) or strong (ICC/XLC-like)")
	o0 := flag.Bool("O0", false, "disable compiler scheduling")
	scheduler := flag.String("scheduler", "", "modulo-scheduling backend for strong compiles: one of "+strings.Join(sched.Names(), ", ")+" (default ims)")
	effort := flag.String("effort", "", "exact-scheduler effort: quick, standard or max (under ims, also proves the optimality gap)")
	format := flag.String("format", "text", "text, json or pprof")
	top := flag.Int("top", 20, "lines per hot-line table (text format)")
	outPath := flag.String("o", "", "output file (default stdout)")
	baseOnly := flag.Bool("base-only", false, "profile only the untransformed leg")
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()
	defer tele.MustFinish()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slmsprof [flags] file.c  (use - for stdin)")
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "pprof":
	default:
		obs.Usagef("unknown -format %q (want text, json or pprof)", *format)
	}
	if *top < 1 {
		obs.Usagef("-top must be at least 1, got %d", *top)
	}
	// Resolve flag values before doing any work: a bad machine or
	// compiler name is a usage error (exit 2), not a failed run.
	d, err := machine.ByName(*machineName)
	if err != nil {
		obs.Usagef("%v", err)
	}
	cc, err := pipeline.CompilerByName(*compiler, *o0)
	if err != nil {
		obs.Usagef("%v", err)
	}
	if _, err := pipeline.SchedulerConfig(*scheduler, *effort); err != nil {
		obs.Usagef("%v", err)
	}
	cc.Scheduler, cc.Effort = *scheduler, *effort

	label := flag.Arg(0)
	var text []byte
	if label == "-" {
		label = "stdin"
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(label)
		label = filepath.Base(label)
	}
	if err != nil {
		obs.Fatalf("%v", err)
	}
	prog, err := source.Parse(string(text))
	if err != nil {
		obs.Fatalf("%v", err)
	}

	prof.SetEnabled(true)
	sp := obs.Root("slmsprof").Attr("machine", d.Name).Attr("compiler", cc.Name)
	outs, errs, err := pipeline.RunExperimentsSpan(sp, prog, d, cc,
		[]core.Options{core.DefaultOptions()}, nil)
	sp.End()
	if err == nil {
		err = errs[0]
	}
	if err != nil {
		obs.Fatalf("%v", err)
	}
	out := outs[0]

	var ps []*prof.Profile
	collect := func(p *prof.Profile) {
		if p == nil {
			return
		}
		if p.Label == "" {
			p.Label = label
		}
		ps = append(ps, p)
	}
	collect(out.Base.Profile)
	if !*baseOnly && out.SLMS != nil && out.SLMS.Profile != out.Base.Profile {
		collect(out.SLMS.Profile)
	}
	if len(ps) == 0 {
		obs.Fatalf("simulation recorded no profile")
	}
	obs.Logf("profiled %s on %s under %s: %d leg(s), slms applied: %v",
		label, d.Name, cc.Name, len(ps), out.Applied)

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			obs.Fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if *format == "text" {
		err = prof.WriteText(w, *top, ps...)
	} else {
		err = prof.Write(w, *format, ps...)
	}
	if err != nil {
		obs.Fatalf("%v", err)
	}
}
