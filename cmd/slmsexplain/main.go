// Command slmsexplain shows the SLMS algorithm's intermediate artifacts
// for every innermost loop of a program: the multi-instructions, the
// data dependence graph with <distance, delay> labels, the MII
// derivation, and the chosen schedule. This is the "interactive source
// level compiler" view of §2/§8 of the paper — the output a user reads
// to decide how to restructure a loop.
//
// Usage:
//
//	slmsexplain file.c   (use - for stdin)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"slms/internal/core"
	"slms/internal/ddg"
	"slms/internal/dep"
	"slms/internal/mii"
	"slms/internal/sem"
	"slms/internal/source"
)

var dotOut = flag.Bool("dot", false, "emit the DDG of each loop as graphviz dot instead of text")

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slmsexplain file.c  (use - for stdin)")
		os.Exit(2)
	}
	var text []byte
	var err error
	if flag.Arg(0) == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := source.Parse(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	info, err := sem.Check(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := 0
	explainStmts(prog.Stmts, info.Table, &n)
	if n == 0 {
		fmt.Println("no innermost canonical loops found")
	}
}

func explainStmts(stmts []source.Stmt, tab *sem.Table, n *int) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *source.For:
			if hasNestedLoop(s.Body) {
				explainStmts(s.Body.Stmts, tab, n)
				continue
			}
			*n++
			explainLoop(s, tab, *n)
		case *source.Block:
			explainStmts(s.Stmts, tab, n)
		case *source.If:
			explainStmts(s.Then.Stmts, tab, n)
			if s.Else != nil {
				explainStmts(s.Else.Stmts, tab, n)
			}
		case *source.While:
			explainStmts(s.Body.Stmts, tab, n)
		}
	}
}

// dotDDG renders the dependence graph in graphviz dot format: solid
// edges are data dependences labelled <dist,delay>, dashed edges the
// implicit sequential chain.
func dotDDG(g *ddg.Graph, mis []source.Stmt) string {
	var b strings.Builder
	b.WriteString("digraph ddg {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n")
	for i := 0; i < g.N; i++ {
		label := fmt.Sprintf("MI%d", i)
		if i < len(mis) {
			label = fmt.Sprintf("MI%d: %s", i, strings.ReplaceAll(source.PrintStmt(mis[i]), "\"", "'"))
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, label)
	}
	for _, e := range g.Edges {
		if e.Chain {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=gray];\n", e.From, e.To)
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%s <%d,%d>\"];\n", e.From, e.To, e.Kind, e.Dist, e.Delay)
	}
	b.WriteString("}\n")
	return b.String()
}

func hasNestedLoop(b *source.Block) bool {
	found := false
	source.WalkStmt(b, func(s source.Stmt) bool {
		switch s.(type) {
		case *source.For, *source.While:
			found = true
			return false
		}
		return true
	})
	return found
}

func explainLoop(f *source.For, tab *sem.Table, idx int) {
	fmt.Printf("==== loop %d ====\n", idx)
	fmt.Println(source.PrintStmt(f))

	l, err := sem.Canonicalize(f)
	if err != nil {
		fmt.Printf("not canonical: %v\n\n", err)
		return
	}
	fmt.Printf("canonical: var=%s lo=%s hi=%s step=%d\n",
		l.Var, source.ExprString(l.Lo), source.ExprString(l.Hi), l.Step)

	an, err := dep.Analyze(f.Body.Stmts, l.Var, tab, dep.Options{})
	if err != nil {
		fmt.Printf("dependence analysis failed: %v\n\n", err)
		return
	}
	fmt.Printf("MIs: %d, memory refs: %d, arithmetic ops: %d\n",
		an.NumMIs, an.MemRefs, an.ArithOps)
	for i, mi := range f.Body.Stmts {
		fmt.Printf("  MI%d: %s\n", i, source.PrintStmt(mi))
	}
	if len(an.Scalars) > 0 {
		fmt.Println("scalars:")
		for _, si := range an.Scalars {
			fmt.Printf("  %-10s %s (defs=%v reads=%v exposed=%v)\n",
				si.Name, si.Class, si.Defs, si.Reads, si.ExposedReads)
		}
	}
	g := ddg.Build(an, true)
	if *dotOut {
		fmt.Print(dotDDG(g, f.Body.Stmts))
	} else {
		fmt.Print(g.Dump())
	}

	ii, err := mii.Find(g, mii.Options{})
	if err != nil {
		fmt.Printf("MII: %v\n", err)
	} else {
		fmt.Printf("MII = %d\n", ii)
	}

	r, err := core.Transform(f, tab, core.DefaultOptions())
	if err != nil {
		fmt.Printf("transform error: %v\n\n", err)
		return
	}
	if !r.Applied {
		fmt.Printf("SLMS not applied: %s\n\n", r.Reason)
		return
	}
	fmt.Printf("SLMS applied: II=%d MIs=%d stages=%d unroll=%d decompositions=%d\n",
		r.II, r.MIs, r.Stages, r.Unroll, r.Decompositions)
	for _, line := range r.Log {
		fmt.Printf("  %s\n", line)
	}
	fmt.Println("---- transformed ----")
	fmt.Println(source.PrintStmt(r.Replacement))
	fmt.Println()
}
