// Command slmsexplain shows the SLMS algorithm's intermediate artifacts
// for every innermost loop of a program: the multi-instructions, the
// data dependence graph with <distance, delay> labels, the MII
// derivation, and the chosen schedule. This is the "interactive source
// level compiler" view of §2/§8 of the paper — the output a user reads
// to decide how to restructure a loop.
//
// Usage:
//
//	slmsexplain file.c   (use - for stdin)
//
// Flags:
//
//	-dot                       emit each loop's DDG as graphviz dot
//	-trace FILE                write a pipeline trace at exit
//	-trace-format chrome|jsonl trace file format (default chrome)
//	-metrics FILE              write a metrics dump at exit ("-" = stdout)
//	-q                         suppress status output
//
// Every loop's report ends with its decision record: the stable SLMS2xx
// code, the accept/skip verdict, and the measured evidence (filter
// ratio, II search iterations) the decision rests on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"slms/internal/core"
	"slms/internal/ddg"
	"slms/internal/dep"
	"slms/internal/dep/omega"
	"slms/internal/mii"
	"slms/internal/obs"
	"slms/internal/sem"
	"slms/internal/source"
)

var dotOut = flag.Bool("dot", false, "emit the DDG of each loop as graphviz dot instead of text")

func main() {
	tele := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	tele.Activate()
	defer tele.MustFinish()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slmsexplain file.c  (use - for stdin)")
		os.Exit(2)
	}
	var text []byte
	var err error
	if flag.Arg(0) == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		obs.Fatalf("%v", err)
	}
	prog, err := source.Parse(string(text))
	if err != nil {
		obs.Fatalf("%v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		obs.Fatalf("%v", err)
	}
	sp := obs.Root("slmsexplain").Attr("file", flag.Arg(0))
	defer sp.End()
	n := 0
	explainStmts(sp, prog.Stmts, info.Table, &n)
	if n == 0 {
		fmt.Println("no innermost canonical loops found")
	}
}

func explainStmts(sp *obs.Span, stmts []source.Stmt, tab *sem.Table, n *int) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *source.For:
			if hasNestedLoop(s.Body) {
				explainStmts(sp, s.Body.Stmts, tab, n)
				continue
			}
			*n++
			explainLoop(sp, s, tab, *n)
		case *source.Block:
			explainStmts(sp, s.Stmts, tab, n)
		case *source.If:
			explainStmts(sp, s.Then.Stmts, tab, n)
			if s.Else != nil {
				explainStmts(sp, s.Else.Stmts, tab, n)
			}
		case *source.While:
			explainStmts(sp, s.Body.Stmts, tab, n)
		}
	}
}

// dotDDG renders the dependence graph in graphviz dot format: solid
// edges are data dependences labelled <dist,delay>, dashed edges the
// implicit sequential chain.
func dotDDG(g *ddg.Graph, mis []source.Stmt) string {
	var b strings.Builder
	b.WriteString("digraph ddg {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n")
	for i := 0; i < g.N; i++ {
		label := fmt.Sprintf("MI%d", i)
		if i < len(mis) {
			label = fmt.Sprintf("MI%d: %s", i, strings.ReplaceAll(source.PrintStmt(mis[i]), "\"", "'"))
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, label)
	}
	for _, e := range g.Edges {
		if e.Chain {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=gray];\n", e.From, e.To)
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%s <%d,%d>\"];\n", e.From, e.To, e.Kind, e.Dist, e.Delay)
	}
	b.WriteString("}\n")
	return b.String()
}

func hasNestedLoop(b *source.Block) bool {
	found := false
	source.WalkStmt(b, func(s source.Stmt) bool {
		switch s.(type) {
		case *source.For, *source.While:
			found = true
			return false
		}
		return true
	})
	return found
}

// printDecision renders a loop's decision record: the stable code, the
// verdict, and the measured evidence (sorted for deterministic output).
func printDecision(d obs.Decision) {
	fmt.Printf("decision: %s verdict=%s loop=%s", d.Code, d.Verdict, d.Loop)
	if d.Reason != "" {
		fmt.Printf(" (%s)", d.Reason)
	}
	fmt.Println()
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s = %v\n", k, d.Attrs[k])
	}
}

func explainLoop(sp *obs.Span, f *source.For, tab *sem.Table, idx int) {
	fmt.Printf("==== loop %d ====\n", idx)
	fmt.Println(source.PrintStmt(f))

	l, err := sem.Canonicalize(f)
	if err != nil {
		fmt.Printf("not canonical: %v\n\n", err)
		return
	}
	fmt.Printf("canonical: var=%s lo=%s hi=%s step=%d\n",
		l.Var, source.ExprString(l.Lo), source.ExprString(l.Hi), l.Step)

	an, err := dep.Analyze(f.Body.Stmts, l.Var, tab, dep.Options{
		Step: l.Step, Lo: l.Lo, Hi: l.Hi, Ranges: omega.FromTable(tab),
	})
	if err != nil {
		fmt.Printf("dependence analysis failed: %v\n\n", err)
		return
	}
	fmt.Printf("MIs: %d, memory refs: %d, arithmetic ops: %d\n",
		an.NumMIs, an.MemRefs, an.ArithOps)
	if p := an.Precision; p.Pairs > 0 {
		fmt.Printf("subscript pairs: %d (legacy unknown: %d, solver resolved: %d, still unknown: %d)\n",
			p.Pairs, p.LegacyUnknown, p.Resolved, p.Unresolved)
		for _, n := range p.Notes {
			fmt.Printf("  sharpened: %s\n", n)
		}
	}
	for i, mi := range f.Body.Stmts {
		fmt.Printf("  MI%d: %s\n", i, source.PrintStmt(mi))
	}
	if len(an.Scalars) > 0 {
		fmt.Println("scalars:")
		for _, si := range an.Scalars {
			fmt.Printf("  %-10s %s (defs=%v reads=%v exposed=%v)\n",
				si.Name, si.Class, si.Defs, si.Reads, si.ExposedReads)
		}
	}
	g := ddg.Build(an, true)
	if *dotOut {
		fmt.Print(dotDDG(g, f.Body.Stmts))
	} else {
		fmt.Print(g.Dump())
	}

	ii, err := mii.Find(g, mii.Options{})
	if err != nil {
		fmt.Printf("MII: %v\n", err)
	} else {
		fmt.Printf("MII = %d\n", ii)
	}

	r, err := core.TransformSpan(sp, f, tab, core.DefaultOptions())
	if err != nil {
		fmt.Printf("transform error: %v\n\n", err)
		return
	}
	if !r.Applied {
		fmt.Printf("SLMS not applied: %s\n", r.Reason)
		printDecision(r.Decision)
		fmt.Println()
		return
	}
	fmt.Printf("SLMS applied: II=%d MIs=%d stages=%d unroll=%d decompositions=%d\n",
		r.II, r.MIs, r.Stages, r.Unroll, r.Decompositions)
	printDecision(r.Decision)
	for _, line := range r.Log {
		fmt.Printf("  %s\n", line)
	}
	fmt.Println("---- transformed ----")
	fmt.Println(source.PrintStmt(r.Replacement))
	fmt.Println()
}
