// Package slms is a reproduction of "Towards a Source Level Compiler:
// Source Level Modulo Scheduling" (Ben-Asher & Meisler, ICPP 2006): a
// source-to-source loop optimizer that applies modulo scheduling at the
// abstract-syntax-tree level, together with the full simulated tool
// chain the paper evaluates it on.
//
// The implementation lives under internal/:
//
//   - internal/source    mini-C front end (lexer, parser, AST, printer)
//   - internal/sem       symbol tables, typing, canonical-loop analysis
//   - internal/dep       data dependence analysis (affine distances)
//   - internal/ddg       MI dependence graph with source-level delays
//   - internal/mii       minimum initiation interval (difMin / ISP)
//   - internal/core      the SLMS transformation itself (§3–§5)
//   - internal/xform     interchange, fusion, distribution, unrolling,
//     peeling, reversal, tiling, reduction splitting,
//     while-loop unrolling, frequent-path pipelining,
//     downward-loop mirroring (§6, §10)
//   - internal/slc       the Source Level Compiler driver: SLMS combined
//     with enabling transformations, automatically
//   - internal/interp    reference interpreter (the semantic oracle)
//   - internal/ir        three-address virtual ISA
//   - internal/backend   code generation, CSE, register allocation,
//     list scheduling (the "final compiler")
//   - internal/ims       machine-level iterative modulo scheduling (Rau)
//   - internal/machine   ia64/power4/pentium/arm7-like machine models
//   - internal/sim       cycle-level execution-driven timing simulator
//   - internal/pipeline  end-to-end driver and experiment harness
//   - internal/bench     the 31 benchmark loops and figure generators
//
// Command-line tools: cmd/slmsc (source-to-source compiler), cmd/slmsexplain
// (the interactive SLC view), cmd/slmsbench (regenerates every evaluation
// figure). Runnable walkthroughs are under examples/.
package slms
