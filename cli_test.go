package slms_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"

	"slms/internal/obs/promexp"
)

// buildTool compiles one of the cmd/ binaries into a temp dir.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, stdin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s",
			filepath.Base(bin), args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

const cliLoop = `float A[64];
for (i = 2; i < 50; i++) {
	A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2];
}
`

func TestCLISlmsc(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "slmsc")

	// Stdin, paper style.
	out, _ := runTool(t, bin, cliLoop, "-paper", "-noguard", "-")
	if !strings.Contains(out, "||") || !strings.Contains(out, "reg1_2 = A[i + 2]") {
		t.Errorf("paper-style output unexpected:\n%s", out)
	}
	// File input, default style must reparse (verified by feeding it back).
	dir := t.TempDir()
	file := filepath.Join(dir, "loop.c")
	if err := os.WriteFile(file, []byte(cliLoop), 0o644); err != nil {
		t.Fatal(err)
	}
	out2, stderr := runTool(t, bin, "", "-verbose", file)
	if !strings.Contains(stderr, "applied=true") {
		t.Errorf("verbose log missing:\n%s", stderr)
	}
	_, _ = runTool(t, bin, out2, "-") // output is valid input again

	// The SLC driver flag.
	fused := `float A[100]; float B[100]; float C[100];
float t = 0.0; float q = 0.0;
for (i = 1; i < 100; i++) { t = A[i-1]; B[i] = B[i] + t; A[i] = t + B[i]; }
for (i = 1; i < 100; i++) { q = C[i-1]; B[i] = B[i] + q; C[i] = q * B[i]; }
`
	_, stderr2 := runTool(t, bin, fused, "-slc", "-verbose", "-")
	if !strings.Contains(stderr2, "fusion+slms applied") {
		t.Errorf("slc driver did not fuse:\n%s", stderr2)
	}
}

func TestCLISlmslint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "slmslint")

	// A provable loop: SLMS100, proved summary, exit 0.
	out, _ := runTool(t, bin, cliLoop, "-nofilter", "-")
	if !strings.Contains(out, "SLMS100") || !strings.Contains(out, "(1 proved, 0 refuted, 0 inconclusive)") {
		t.Errorf("lint output unexpected:\n%s", out)
	}

	// JSON mode carries codes and the summary.
	js, _ := runTool(t, bin, cliLoop, "-nofilter", "-json", "-")
	if !strings.Contains(js, `"code": "SLMS100"`) || !strings.Contains(js, `"proved": 1`) {
		t.Errorf("json output unexpected:\n%s", js)
	}

	// A filter-rejected loop: informational SLMS001, still exit 0.
	filtered := "float A[64]; float B[64];\nfor (i = 0; i < 64; i++) { A[i] = B[i]; }\n"
	out2, _ := runTool(t, bin, filtered, "-")
	if !strings.Contains(out2, "SLMS001") {
		t.Errorf("filter diagnostic missing:\n%s", out2)
	}
	// -q hides info diagnostics but keeps the summary line.
	quiet, _ := runTool(t, bin, filtered, "-q", "-")
	if strings.Contains(quiet, "SLMS001") || !strings.Contains(quiet, "1 filtered") {
		t.Errorf("quiet output unexpected:\n%s", quiet)
	}

	// No arguments is a usage error: exit 2.
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("want a usage error for missing arguments")
	} else if ee, isExit := err.(*exec.ExitError); !isExit || ee.ExitCode() != 2 {
		t.Errorf("usage failure should exit 2, got %v", err)
	}
}

func TestCLISlmscVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "slmsc")
	out, _ := runTool(t, bin, cliLoop, "-verify", "-nofilter", "-")
	if !strings.Contains(out, "for (") {
		t.Errorf("verified compile produced no loop:\n%s", out)
	}
}

func TestCLISlmsexplain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "slmsexplain")
	out, _ := runTool(t, bin, cliLoop, "-")
	for _, want := range []string{"canonical:", "MI0:", "DDG", "MII", "SLMS applied"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output lacks %q:\n%s", want, out)
		}
	}
	dot, _ := runTool(t, bin, cliLoop, "-dot", "-")
	if !strings.Contains(dot, "digraph ddg") {
		t.Errorf("dot output missing:\n%s", dot)
	}
}

func TestCLISlmssim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "slmssim")
	prog := `float A[200]; float B[200];
for (z = 0; z < 200; z++) { A[z] = 0.1 * z; }
float t = 0.0;
for (i = 1; i < 190; i++) { t = A[i-1]; B[i] = B[i] + t; }
`
	out, _ := runTool(t, bin, prog, "-machine", "ia64", "-compiler", "strong", "-compare", "-")
	if !strings.Contains(out, "speedup:") || !strings.Contains(out, "slms applied: true") {
		t.Errorf("compare output unexpected:\n%s", out)
	}
	out2, _ := runTool(t, bin, prog, "-machine", "arm7", "-")
	if !strings.Contains(out2, "cycles=") {
		t.Errorf("metrics missing:\n%s", out2)
	}
}

func TestCLISlmsbenchSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs a figure")
	}
	bin := buildTool(t, "slmsbench")
	out, _ := runTool(t, bin, "", "-list")
	if !strings.Contains(out, "14") || !strings.Contains(out, "caseA") {
		t.Errorf("list output unexpected:\n%s", out)
	}
	fig, _ := runTool(t, bin, "", "-figure", "caseB")
	if !strings.Contains(fig, "Case B") || !strings.Contains(fig, "xpow") {
		t.Errorf("figure output unexpected:\n%s", fig)
	}
}

// TestCLISlmsd covers the serving daemon: flag misuse exits 2, and a
// full lifecycle — start, serve compiles over HTTP (correlated request
// IDs, atomic access-log lines, a Prometheus scrape), drain on SIGTERM
// — exits 0.
func TestCLISlmsd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "slmsd")

	for _, args := range [][]string{
		{"positional-arg"},
		{"-workers", "-1"},
		{"-queue", "-1"},
		{"-timeout", "0s"},
		{"-timeout", "2m", "-max-timeout", "1m"},
		{"-definitely-not-a-flag"},
	} {
		err := exec.Command(bin, args...).Run()
		if ee, isExit := err.(*exec.ExitError); !isExit || ee.ExitCode() != 2 {
			t.Errorf("slmsd %v: want exit 2, got %v", args, err)
		}
	}

	// Lifecycle: bind an ephemeral port, read the address off the status
	// line, serve requests, then SIGTERM and expect a clean exit. The
	// access log goes to a file so its lines can be checked after exit.
	accessPath := filepath.Join(t.TempDir(), "access.log")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-access-log", accessPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	scanner := bufio.NewScanner(stderr)
	var addr string
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("slmsd never reported its address (scan err: %v)", scanner.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	base := "http://" + addr
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"source": "float A[8]; for (i = 0; i < 8; i++) { A[i] = 0.5; }"}`))
	if err != nil {
		t.Fatalf("POST /v1/compile: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("compile status = %d, body:\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}

	// A supplied traceparent becomes the request ID end to end.
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("POST", base+"/v1/compile",
		strings.NewReader(`{"source": "float A[8]; for (i = 0; i < 8; i++) { A[i] = 0.5; }"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != traceID {
		t.Errorf("traceparent not adopted: X-Request-ID = %q, want %q", got, traceID)
	}

	// Concurrent load: every access-log line must come out whole.
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				body := fmt.Sprintf(`{"source": "x = %d; y = x * %d;"}`, c, i)
				r, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	// Prometheus scrape.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(string(metrics), `slms_server_requests_total{endpoint="compile"}`) {
		t.Errorf("/metrics missing the compile request counter:\n%.1000s", metrics)
	}
	// The exposition must satisfy the in-repo Prometheus linter — the
	// same check the CI metrics-contract job runs against a live scrape.
	for _, p := range promexp.Lint(bytes.NewReader(metrics)) {
		t.Errorf("/metrics lint: %s", p)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("slmsd did not exit cleanly on SIGTERM: %v", err)
	}

	// Every access-log line is whole (no interleaving under concurrency)
	// and carries the full field set.
	blob, err := os.ReadFile(accessPath)
	if err != nil {
		t.Fatalf("read access log: %v", err)
	}
	lineRE := regexp.MustCompile(`^access endpoint=\S+ status=\d+ req=\S+ fp=\S+ cache=\S+ deadline_ms=-?\d+ dur_us=\d+$`)
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	if len(lines) < 32 {
		t.Errorf("access log has %d lines, want >= 32 (2 + 30 concurrent)", len(lines))
	}
	for i, line := range lines {
		if !lineRE.MatchString(line) {
			t.Errorf("access log line %d malformed (interleaved?): %q", i+1, line)
		}
	}
	if !strings.Contains(string(blob), "req="+traceID) {
		t.Errorf("access log never mentions the supplied trace ID %s", traceID)
	}

	// -access-log=off: a short lifecycle that must log no access lines.
	out, err := runSlmsdOnce(t, bin, "-access-log=off")
	if err != nil {
		t.Fatalf("slmsd -access-log=off lifecycle: %v", err)
	}
	if strings.Contains(out, "access endpoint=") {
		t.Errorf("-access-log=off still wrote access lines:\n%s", out)
	}
}

// runSlmsdOnce starts slmsd with the extra args, serves one compile,
// SIGTERMs it, and returns everything it wrote to stderr.
func runSlmsdOnce(t *testing.T, bin string, extra ...string) (string, error) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", err
	}
	defer cmd.Process.Kill()

	var buf strings.Builder
	scanner := bufio.NewScanner(stderr)
	var addr string
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		return buf.String(), fmt.Errorf("slmsd never reported its address (scan err: %v)", scanner.Err())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for scanner.Scan() {
			buf.WriteString(scanner.Text())
			buf.WriteByte('\n')
		}
	}()

	resp, err := http.Post("http://"+addr+"/v1/compile", "application/json",
		strings.NewReader(`{"source": "float A[8]; for (i = 0; i < 8; i++) { A[i] = 0.5; }"}`))
	if err != nil {
		return buf.String(), err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return buf.String(), err
	}
	err = cmd.Wait()
	<-done
	return buf.String(), err
}

// TestCLIFlagParity pins the shared observability flag surface across
// every binary in cmd/. The list is enumerated from the directory, not
// hard-coded, so adding a ninth binary without obs.RegisterFlags fails
// here instead of silently shipping a CLI that cannot be correlated,
// traced or quieted like the rest.
func TestCLIFlagParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) < 8 {
		t.Fatalf("cmd/ lists %d binaries (%v), want at least the 8 known ones", len(names), names)
	}
	// The contract every binary carries: request correlation, tracing,
	// metrics export, quiet mode.
	required := []string{"-request-id", "-trace", "-trace-format", "-metrics", "-q"}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := buildTool(t, name)
			out, err := exec.Command(bin, "-h").CombinedOutput()
			if err != nil { // flag package exits 0 on -h
				t.Fatalf("%s -h: %v\n%s", name, err, out)
			}
			usage := string(out)
			for _, f := range required {
				// Usage lines render flags as "  -request-id string".
				if !regexp.MustCompile(`(?m)^\s+` + f + `\b`).MatchString(usage) {
					t.Errorf("%s usage does not list %s", name, f)
				}
			}
		})
	}
}

// TestCLISlmsfr covers the postmortem reader end to end on a golden
// dump: lint, the request-ID-joined timeline, verbose bodies/spans,
// filters, in-process replay reproducing each recorded outcome, and
// the typed-failure exit codes for corrupt dumps.
func TestCLISlmsfr(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "slmsfr")
	golden := filepath.Join("internal", "obs", "flight", "testdata", "golden-sigquit.json")

	out, _ := runTool(t, bin, "", "-q", "-lint", golden)
	_ = out // -q suppresses the ok line; exit 0 is the assertion

	lintOut, lintErr := runTool(t, bin, "", "-lint", golden)
	if !strings.Contains(lintOut+lintErr, "flightdump/v1 ok") {
		t.Errorf("lint output unexpected:\nstdout: %s\nstderr: %s", lintOut, lintErr)
	}

	// The timeline joins decision records to requests by ID.
	print, _ := runTool(t, bin, "", golden)
	for _, want := range []string{
		"flightdump/v1 seq=1 reason=sigquit",
		"req=r00000001", "req=r00000002",
		"decision SLMS220 skip loop=1:14",
		"decision SLMS422 error loop=1:16",
		"== slowest: compile",
	} {
		if !strings.Contains(print, want) {
			t.Errorf("print output lacks %q:\n%s", want, print)
		}
	}
	if strings.Contains(print, "float A[16]") {
		t.Errorf("bodies printed without -v:\n%s", print)
	}

	verbose, _ := runTool(t, bin, "", "-v", golden)
	for _, want := range []string{"span server.compile", "span   transform", "body: {\"source\""} {
		if !strings.Contains(verbose, want) {
			t.Errorf("-v output lacks %q:\n%s", want, verbose)
		}
	}

	// -request-id narrows the timeline to one request.
	one, _ := runTool(t, bin, "", "-request-id", "r00000002", golden)
	if strings.Contains(one, "req=r00000001") || !strings.Contains(one, "req=r00000002") {
		t.Errorf("-request-id filter leaked other requests:\n%s", one)
	}

	// In-process replay: both captured outcomes (a 200 and an SLMS422)
	// reproduce from the dump alone, so the command exits 0.
	rep, _ := runTool(t, bin, "", "-replay", golden)
	for _, want := range []string{
		"want=200 got=200 reproduced",
		"want=422/SLMS422 got=422/SLMS422 reproduced",
		"replayed 2 requests: 2 reproduced, 0 diverged",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("replay output lacks %q:\n%s", want, rep)
		}
	}

	// A dump read from stdin works; a corrupt one is a typed exit-1
	// failure, never a panic.
	blob, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	stdinOut, _ := runTool(t, bin, string(blob), "-q", "-")
	if !strings.Contains(stdinOut, "req=r00000001") {
		t.Errorf("stdin dump not printed:\n%s", stdinOut)
	}
	cmd := exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader(string(blob[:len(blob)/2]))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	if ee, isExit := err.(*exec.ExitError); !isExit || ee.ExitCode() != 1 {
		t.Errorf("corrupt dump: want exit 1, got %v", err)
	}
	if !strings.Contains(stderr.String(), "not valid JSON") || strings.Contains(stderr.String(), "goroutine") {
		t.Errorf("corrupt dump error not typed (or panicked):\n%s", stderr.String())
	}
}

// TestExamplesRun builds and runs every example program end to end.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cases := map[string]string{
		"quickstart": "speedup:",
		"slcsession": "II=3 (paper: II=3)",
		"embedded":   "verdict",
		"whileloops": "results identical to the original",
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			var stdout bytes.Buffer
			cmd := exec.Command(bin)
			cmd.Stdout = &stdout
			cmd.Stderr = &stdout
			if err := cmd.Run(); err != nil {
				t.Fatalf("run: %v\n%s", err, stdout.String())
			}
			if !strings.Contains(stdout.String(), want) {
				t.Errorf("output lacks %q:\n%s", want, stdout.String())
			}
		})
	}
}

// TestCLIContract pins the shared command-line conventions across every
// command: a usage error exits 2, a pipeline error (bad input) exits 1,
// success exits 0, and -q suppresses informational status output while
// leaving errors on stderr.
func TestCLIContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	garbage := "for (i = 0; i <" // unparseable

	cases := []struct {
		name string
		// okArgs runs the happy path reading cliLoop from stdin;
		// usageArgs must exit 2; badInput feeds garbage to okArgs and
		// must exit badExit — 1 everywhere except slmslint, whose
		// documented contract reserves 1 for lint findings and reports
		// input errors as 2.
		okArgs    []string
		usageArgs []string
		badExit   int
	}{
		{"slmsc", []string{"-"}, []string{"-expand", "sideways", "-"}, 1},
		{"slmslint", []string{"-nofilter", "-"}, []string{"-expand", "sideways", "-"}, 2},
		{"slmsexplain", []string{"-"}, nil, 1},
		{"slmssim", []string{"-machine", "arm7", "-"}, []string{"-machine", "cray1", "-"}, 1},
		{"slmsprof", []string{"-machine", "arm7", "-top", "3", "-"}, []string{"-format", "yaml", "-"}, 1},
		{"slmsbench", []string{"-figure", "caseB"}, []string{"-compare", "only-one.json"}, 1},
		{"slmsfr", []string{"-"}, []string{"-lint", "-replay", "-"}, 1},
	}
	goldenDump, err := os.ReadFile(filepath.Join("internal", "obs", "flight", "testdata", "golden-sigquit.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			bin := buildTool(t, tc.name)
			stdin := cliLoop
			switch tc.name {
			case "slmsbench":
				stdin = ""
			case "slmsfr": // reads a flight dump, not mini-C source
				stdin = string(goldenDump)
			}

			// Success: exit 0, and -q leaves stderr free of info lines.
			run := func(args ...string) (string, string, int) {
				cmd := exec.Command(bin, args...)
				if stdin != "" {
					cmd.Stdin = strings.NewReader(stdin)
				}
				var stdout, stderr bytes.Buffer
				cmd.Stdout = &stdout
				cmd.Stderr = &stderr
				err := cmd.Run()
				code := 0
				if ee, ok := err.(*exec.ExitError); ok {
					code = ee.ExitCode()
				} else if err != nil {
					t.Fatalf("%v: %v", args, err)
				}
				return stdout.String(), stderr.String(), code
			}

			stdout, stderr, code := run(append([]string{"-q"}, tc.okArgs...)...)
			if code != 0 {
				t.Fatalf("-q %v exited %d\nstderr:\n%s", tc.okArgs, code, stderr)
			}
			if stdout == "" {
				t.Errorf("-q %v suppressed primary output", tc.okArgs)
			}
			for _, line := range strings.Split(stderr, "\n") {
				if line != "" && !strings.HasPrefix(line, "slms: warning:") {
					t.Errorf("-q %v left status output on stderr: %q", tc.okArgs, line)
				}
			}

			// Usage error: exit 2 (bad flag for everyone; plus the
			// command-specific usage mistake when one exists).
			usages := [][]string{{"-definitely-not-a-flag"}}
			if tc.usageArgs != nil {
				usages = append(usages, tc.usageArgs)
			}
			if tc.name != "slmsbench" { // slmsbench needs no file argument
				usages = append(usages, nil) // missing argument
			}
			for _, args := range usages {
				saved := stdin
				stdin = ""
				_, stderr, code := run(args...)
				stdin = saved
				if code != 2 {
					t.Errorf("%v exited %d, want usage code 2", args, code)
				}
				// Bad flag *values* (as opposed to flag-package parse
				// errors) report through the slog wrapper.
				if len(args) > 0 && tc.usageArgs != nil && args[0] == tc.usageArgs[0] &&
					!strings.Contains(stderr, "slms: error:") {
					t.Errorf("%v did not report through the slog wrapper:\n%s", args, stderr)
				}
			}

			// Pipeline error: exit 1.
			badArgs := tc.okArgs
			if tc.name == "slmsbench" {
				badArgs = []string{"-figure", "no-such-figure"}
			} else {
				stdin = garbage
			}
			_, stderr, code = run(badArgs...)
			if code != tc.badExit {
				t.Errorf("bad input exited %d, want %d\nstderr:\n%s", code, tc.badExit, stderr)
			}
			if strings.TrimSpace(stderr) == "" {
				t.Errorf("bad input reported nothing on stderr")
			}
		})
	}
}
