package slms_test

import (
	"fmt"
	"strings"
	"testing"

	"slms"
)

// ExampleTransformSource is the one-screen library quickstart.
func ExampleTransformSource() {
	out, results, err := slms.TransformSource(`
		float A[64];
		float t = 0.0;
		for (i = 1; i < 60; i++) {
			t = A[i+1];
			A[i] = A[i-1] + t;
		}
	`, slms.DefaultOptions())
	if err != nil {
		panic(err)
	}
	_ = out
	r := results[0]
	fmt.Printf("applied=%v II=%d stages=%d unroll=%d\n", r.Applied, r.II, r.Stages, r.Unroll)
	// Output:
	// applied=true II=1 stages=2 unroll=2
}

func TestPublicAPIEndToEnd(t *testing.T) {
	prog, err := slms.Parse(`
		float A[128]; float B[128];
		for (z = 0; z < 128; z++) { A[z] = 0.25*z; B[z] = 1.0; }
		float t = 0.0;
		for (i = 1; i < 120; i++) {
			t = A[i-1];
			B[i] = B[i] + t;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Transform and print.
	out, results, err := slms.Transform(prog, slms.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	applied := false
	for _, r := range results {
		applied = applied || r.Applied
	}
	if !applied {
		t.Fatal("not applied")
	}
	if !strings.Contains(slms.PrintPaper(out), "||") {
		t.Error("paper style output lacks rows")
	}
	// Interpret.
	env := slms.NewEnv()
	if err := slms.Run(out, env); err != nil {
		t.Fatal(err)
	}
	// Measure on a machine.
	m, err := slms.Measure(prog, slms.MachineIA64(), slms.CompilerWeak, slms.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Base.Cycles <= 0 || m.SLMS.Cycles <= 0 {
		t.Errorf("degenerate measurement: %+v", m)
	}
	t.Logf("speedup on ia64/weak: %.3f", m.Speedup)
	// The SLC driver.
	res, err := slms.Optimize(prog, slms.DefaultSLCOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled == 0 {
		t.Error("SLC scheduled nothing")
	}
}

// TestProfilingAPI turns cycle attribution on, measures a kernel, and
// renders the resulting profiles in all three formats.
func TestProfilingAPI(t *testing.T) {
	if slms.Profiling() {
		t.Fatal("profiling should default off")
	}
	slms.SetProfiling(true)
	defer slms.SetProfiling(false)

	prog, err := slms.Parse(`
		float A[128]; float B[128];
		float t = 0.0;
		for (i = 1; i < 120; i++) {
			t = A[i-1];
			B[i] = B[i] + t;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := slms.Measure(prog, slms.MachineIA64(), slms.CompilerWeak, slms.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base, slmsLeg := m.Base.Profile, m.SLMS.Profile
	if base == nil || slmsLeg == nil {
		t.Fatal("enabled profiling recorded no profiles")
	}
	tot := base.Totals()
	if got := tot.Total(); got != m.Base.Cycles {
		t.Errorf("base profile attributes %d cycles, simulated %d", got, m.Base.Cycles)
	}
	if len(slmsLeg.Loops) == 0 {
		t.Error("slms profile carries no per-loop stats")
	}
	for _, format := range []string{
		slms.ProfileFormatText, slms.ProfileFormatJSON, slms.ProfileFormatPprof,
	} {
		var buf strings.Builder
		if err := slms.WriteProfile(&buf, format, base, slmsLeg); err != nil {
			t.Errorf("WriteProfile %s: %v", format, err)
		} else if buf.Len() == 0 {
			t.Errorf("WriteProfile %s produced nothing", format)
		}
	}
}
